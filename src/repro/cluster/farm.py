"""Multi-server farms: independent SleepScale instances behind a dispatcher.

This implements the scale-out sketch from the paper's conclusion: a front-end
dispatcher splits the arrival stream across ``n`` servers and every server
runs its own power-management strategy, predictor and epoch loop, exactly as
the single-server :class:`~repro.core.runtime.SleepScaleRuntime` does.  The
farm result aggregates the per-server outcomes into farm-level power and
latency metrics.

Two runtimes share this machinery:

* :class:`ClusterRuntime` — the original *homogeneous* farm: one power model,
  one runtime config, and per-index strategy/predictor factories, replicated
  across ``num_servers`` identical servers;
* :class:`ServerFarm` — the *heterogeneous* generalisation: an explicit list
  of :class:`ServerSpec` entries, each carrying its own platform power model,
  policy-management strategy (and therefore its own
  :class:`~repro.core.policy_manager.PolicyManager`), predictor, runtime
  config, service-scaling rule and dispatch-visible frequency ceiling.
  Mixing e.g. Xeon- and Atom-class servers behind a
  :class:`~repro.cluster.dispatch.PowerAwareDispatcher` is the substrate for
  the energy-proportionality scenarios in :mod:`repro.scenarios`.

Execution model: the dispatcher assigns every job to a server *first* (from
arrival times and nominal service demands only — the front end cannot see
DVFS or sleep decisions), then each server's epoch loop runs independently
over its sub-stream, optionally fanned out over a thread pool
(``max_workers``) or sharded across worker processes
(``executor="process"``, via picklable :class:`ServerShardTask`s); all
execution paths produce bit-identical :class:`FarmResult`s.
The work-tracking dispatchers receive each server's *dispatch speed* —
derived from its :class:`ServerSpec` service scaling and frequency ceiling —
so heterogeneous farms route on estimated finish times rather than raw
demand seconds.  Because each server is managed independently (no
coordination), the per-epoch policy-search overhead scales linearly with the
number of servers — the "controlling the overall queuing simulation
overhead" concern the paper raises — which the ablation benchmark quantifies
through the recorded wall-clock cost per run.

Streaming farm runs: with ``chunk_jobs`` set (field or ``run`` argument) the
farm dispatches and feeds per-server epoch loops in arrival-ordered chunks
through :class:`~repro.core.runtime.RuntimeSession`, never materialising all
per-server job arrays at once — million-job traces stream through in
bounded memory and produce results identical to the one-shot path (pinned
by ``tests/cluster/test_farm_streaming.py``).

Farm-level QoS: each server derives its response-time budget from its own
``rho_b``; the farm reports against the *strictest* (smallest) per-server
budget, which collapses to the shared budget in the homogeneous case.
"""

from __future__ import annotations

import contextlib
import math
import tempfile
from dataclasses import dataclass, field, replace
from functools import cached_property
from collections.abc import Callable, Mapping, Sequence

import numpy as np

from repro.cluster.controller import (
    ControllerSchedule,
    FarmController,
    controller_assignment,
)
from repro.cluster.dispatch import JobDispatcher, RoundRobinDispatcher
from repro.cluster.tenancy import (
    FarmQos,
    TenancyAccounting,
    TenantOutcome,
    tenant_outcomes,
)
from repro.concurrency import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    resolve_executor,
)
from repro.core.epoch import RuntimeResult
from repro.core.runtime import RuntimeConfig, RuntimeSession, SleepScaleRuntime
from repro.core.qos import QosConstraint
from repro.core.search import CharacterizationCache
from repro.core.strategies import PowerManagementStrategy
from repro.exceptions import ConfigurationError
from repro.power.platform import ServerPowerModel
from repro.power.states import C6_S3
from repro.prediction.base import UtilizationPredictor
from repro.units import minutes
from repro.simulation.service_scaling import ServiceScaling, cpu_bound
from repro.workloads.jobs import JobTrace
from repro.workloads.spec import WorkloadSpec
from repro.workloads.storage import (
    TRACE_BACKEND_MEMORY,
    TRACE_BACKEND_MMAP,
    ArenaReader,
    ArrayDescriptor,
    SharedTraceArena,
    is_mmap_backed,
    validate_trace_backend,
)

#: Factory signatures: one fresh strategy/predictor per server, so per-server
#: state (policy-manager RNGs, LMS weights) is never shared accidentally.
StrategyFactory = Callable[[int], PowerManagementStrategy]
PredictorFactory = Callable[[int], UtilizationPredictor]

#: Power state a controller-parked server draws in: parked spans are charged
#: at this state's system power (C6 core + S3 platform, the deepest state the
#: power models tabulate) instead of the server's own sleep-walk average.
PARKED_STATE = C6_S3


@dataclass(frozen=True)
class PerIndexFactory:
    """Freeze a per-index factory into a zero-argument factory for one slot.

    Unlike the ``lambda index=index: factory(index)`` closure it replaces,
    an instance is *picklable* whenever the wrapped factory is (a module
    level function, ``functools.partial`` of one, or a factory dataclass),
    which is what lets :meth:`ClusterRuntime.as_server_farm` farms run on
    the process executor.
    """

    factory: Callable[[int], object]
    index: int

    def __call__(self) -> object:
        return self.factory(self.index)


def _build_server_runtime(
    server: ServerSpec,
    spec: WorkloadSpec,
    search_cache: CharacterizationCache | None,
) -> SleepScaleRuntime:
    """One fresh runtime for *server* (shared by all execution paths)."""
    strategy = server.strategy_factory()
    if search_cache is not None and hasattr(strategy, "attach_search_cache"):
        strategy.attach_search_cache(search_cache)
    return SleepScaleRuntime(
        power_model=server.power_model,
        spec=spec,
        strategy=strategy,
        predictor=server.predictor_factory(),
        config=server.config,
        scaling=server.scaling,
    )


@dataclass(frozen=True)
class ServerShardTask:
    """Picklable unit of process-sharded farm work: one server, one shard.

    Everything a worker process needs to reproduce the serial per-server
    run bit for bit: the full :class:`ServerSpec` (its factories must be
    picklable — the built-in scenario factories and
    :class:`PerIndexFactory` are), the farm-wide workload spec, this
    server's dispatched sub-stream, and whether the farm carries a shared
    characterisation cache.  The cache itself cannot cross the process
    boundary (it is a lock-guarded LRU), so each worker process attaches
    its own (:func:`_process_local_cache`); cached values are exact, keyed
    by full identity, hence per-process caching cannot change results —
    only hit rates.
    """

    server: ServerSpec
    spec: WorkloadSpec
    jobs: JobTrace
    use_cache: bool


@dataclass(frozen=True)
class SharedServerShardTask:
    """Zero-copy process shard: descriptors instead of the sub-stream.

    The shared-memory counterpart of :class:`ServerShardTask` (the farm
    picks between them by ``trace_backend``): the parent gathers the trace
    into stable server-grouped order and publishes the grouped
    arrival/demand arrays into a
    :class:`~repro.workloads.storage.SharedTraceArena` *once*; each shard
    task then carries two constant-size
    :class:`~repro.workloads.storage.ArrayDescriptor`\\ s narrowed to its
    server's contiguous range.  Pickling a shard is therefore O(1) in the
    trace length instead of O(jobs-on-server), and the worker materialises
    its sub-stream with a straight contiguous copy — no worker-side gather.
    The grouped range holds the same float values, in the same order, as
    the memory path's boolean-mask dispatch, hence bit-identical results.
    """

    server: ServerSpec
    spec: WorkloadSpec
    use_cache: bool
    arrivals: ArrayDescriptor
    demands: ArrayDescriptor


#: LRU bounds of the per-worker-process characterisation cache.  A pool
#: worker outlives one farm run (and under an externally managed pool may
#: serve many different farms), so the cache must carry an explicit bound —
#: the same LRU discipline :class:`CharacterizationCache` applies everywhere
#: else — rather than growing with every farm a worker ever shards.
_PROCESS_CACHE_MAX_TABLES = 512
_PROCESS_CACHE_MAX_KERNELS = 8

#: Per-worker-process characterisation cache (see :class:`ServerShardTask`).
#: Created lazily inside a worker; never populated in the parent process.
_PROCESS_CACHE: CharacterizationCache | None = None


def _process_local_cache() -> CharacterizationCache:
    global _PROCESS_CACHE
    if _PROCESS_CACHE is None:
        _PROCESS_CACHE = CharacterizationCache(
            max_tables=_PROCESS_CACHE_MAX_TABLES,
            max_kernels=_PROCESS_CACHE_MAX_KERNELS,
        )
    return _PROCESS_CACHE


def _run_shard(
    server: ServerSpec, spec: WorkloadSpec, jobs: JobTrace, use_cache: bool
) -> RuntimeResult:
    """Run one server's epoch loop in a worker (shared by both shard kinds).

    When the worker-local cache is in play, the shard's hit/miss deltas are
    folded into ``RuntimeResult.extra`` (``process_cache_*`` keys), so the
    parent can observe per-shard cache effectiveness — state that otherwise
    dies with the worker.  The counters are observability only; they never
    feed back into results.
    """
    cache = _process_local_cache() if use_cache else None
    before = cache.stats.as_dict() if cache is not None else None
    runtime = _build_server_runtime(server, spec, cache)
    result = runtime.run(jobs)
    if cache is not None and before is not None:
        after = cache.stats.as_dict()
        extra = dict(result.extra)
        for key, value in after.items():
            extra[f"process_cache_{key}"] = float(value - before.get(key, 0))
        result = replace(result, extra=extra)
    return result


def run_server_shard(task: ServerShardTask) -> RuntimeResult:
    """Run one server's epoch loop over its shard (process-pool work fn)."""
    return _run_shard(task.server, task.spec, task.jobs, task.use_cache)


def run_shared_server_shard(task: SharedServerShardTask) -> RuntimeResult:
    """Zero-copy process-pool work fn: resolve descriptors, then run.

    ``load`` copies this server's contiguous grouped range into private
    worker memory (exactly the arrays the memory path would have pickled
    over), so the reader detaches before the epoch loop runs — no shared
    buffer outlives the ``with`` block, and the parent's unlink can never
    invalidate arrays mid-simulation.
    """
    with ArenaReader() as reader:
        arrivals = reader.load(task.arrivals)
        demands = reader.load(task.demands)
    jobs = JobTrace.from_validated_arrays(arrivals, demands)
    return _run_shard(task.server, task.spec, jobs, task.use_cache)


def _run_runtime_on_stream(
    pair: "tuple[SleepScaleRuntime, JobTrace]",
) -> RuntimeResult:
    """Thread/serial fan-out work fn: run one prebuilt runtime on its stream."""
    runtime, stream = pair
    return runtime.run(stream)


def _feed_session(
    item: "tuple[RuntimeSession, np.ndarray, np.ndarray]",
) -> None:
    """Chunked-run fan-out work fn: feed one chunk into one session."""
    session, chunk_arrivals, chunk_demands = item
    session.feed(chunk_arrivals, chunk_demands)


def _finish_session(session: RuntimeSession) -> RuntimeResult:
    """Chunked-run fan-out work fn: close one streaming session."""
    return session.finish()


def prorated_idle_energy(
    idle_energy: float, idle_duration: float, horizon: float,
    already_covered: float = 0.0,
) -> float:
    """Charge a parked server's sleep-walk power over the farm's span.

    The idle run's span is quantized up to the server's own epoch length, so
    its *average power* is re-applied over the farm's actual *horizon* —
    differing epoch configs then cannot overcount parked servers.  A
    zero-length idle run or a zero/negative horizon charges nothing (instead
    of dividing by zero): with no observed span there is no power to prorate.

    ``already_covered`` subtracts the span whose energy is accounted
    elsewhere before prorating.  The farm controller charges spans it
    *parked* a server for at deep-sleep power directly; without the
    subtraction the sleep-walk proration would bill those same seconds a
    second time (the double-count this parameter was introduced to fix —
    pinned by ``tests/property/test_controller_invariants.py``).  Covered
    spans at or beyond the horizon charge nothing here.
    """
    remaining = horizon - max(already_covered, 0.0)
    if remaining <= 0 or idle_duration <= 0:
        return 0.0
    return idle_energy / idle_duration * remaining


@dataclass(frozen=True)
class FarmResult:
    """Aggregate outcome of one multi-server run.

    ``server_names`` (optional) labels each server slot — for heterogeneous
    farms this is how reports attribute per-server results to platforms.
    ``idle_energies`` (optional, aligned with ``per_server``, zero at active
    slots) charges servers that received no jobs for walking their sleep
    sequences over the observation span, so farm power totals do not drop
    discontinuously when a dispatcher parks a server entirely.

    Controlled runs (``ServerFarm.controller``) additionally record the
    controller's plan: ``awake_counts`` is the commanded-on server count
    per control epoch, ``setup_energy`` the total energy paid for wake
    transitions (included in :attr:`total_energy`), and
    ``wake_transitions`` the ``(time, server, "wake"|"park")`` log.  All
    three stay at their defaults on controller-less runs.

    Multi-tenant runs (``ServerFarm.qos`` in per-tenant mode) attach a
    :class:`~repro.cluster.tenancy.TenancyAccounting` as ``tenancy``
    (excluded from equality: it is derived bookkeeping, not an outcome
    in its own right); :meth:`tenant_rows` and :meth:`tenant_meets_budget`
    read per-class latency rows out of it.  Every farm-level number —
    budget, energy, ``meets_budget`` — is computed exactly as on a
    single-tenant run.
    """

    per_server: tuple[RuntimeResult | None, ...]
    mean_service_time: float
    response_time_budget: float
    server_names: tuple[str, ...] | None = None
    idle_energies: tuple[float, ...] | None = None
    awake_counts: tuple[int, ...] | None = None
    setup_energy: float = 0.0
    wake_transitions: tuple[tuple[float, int, str], ...] | None = None
    tenancy: TenancyAccounting | None = field(
        default=None, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        if not self.per_server:
            raise ConfigurationError("a farm result needs at least one server slot")
        if all(result is None for result in self.per_server):
            raise ConfigurationError("a farm result needs at least one active server")
        for label, values in (
            ("server names", self.server_names),
            ("idle energies", self.idle_energies),
        ):
            if values is not None and len(values) != len(self.per_server):
                raise ConfigurationError(
                    f"got {len(values)} {label} for "
                    f"{len(self.per_server)} server slots"
                )
        if self.idle_energies is not None and any(
            energy < 0 for energy in self.idle_energies
        ):
            raise ConfigurationError("idle energies must be non-negative")
        if not math.isfinite(self.setup_energy) or self.setup_energy < 0:
            raise ConfigurationError(
                f"setup energy must be finite and >= 0, got {self.setup_energy}"
            )
        if self.awake_counts is not None and (
            not self.awake_counts
            or any(count < 0 for count in self.awake_counts)
        ):
            raise ConfigurationError(
                "awake counts must be a non-empty tuple of counts >= 0"
            )

    # -- structure ----------------------------------------------------------------

    @property
    def num_servers(self) -> int:
        """Total number of servers in the farm (including idle ones)."""
        return len(self.per_server)

    @property
    def active_servers(self) -> list[RuntimeResult]:
        """Results of the servers that received at least one job."""
        return [result for result in self.per_server if result is not None]

    # -- latency -----------------------------------------------------------------------

    @cached_property
    def response_times(self) -> np.ndarray:
        """All jobs' response times across the whole farm.

        Cached: the concatenation over per-server arrays is paid once, not
        on every access by ``mean_response_time`` / percentile /
        ``meets_budget`` (these can span millions of jobs).
        """
        parts = [r.response_times for r in self.active_servers if r.num_jobs > 0]
        if not parts:
            return np.array([], dtype=float)
        return np.concatenate(parts)

    @property
    def num_jobs(self) -> int:
        """Total jobs served by the farm."""
        return int(self.response_times.size)

    @property
    def mean_response_time(self) -> float:
        """Farm-wide mean response time, seconds."""
        values = self.response_times
        return float(np.mean(values)) if values.size else math.nan

    @property
    def normalized_mean_response_time(self) -> float:
        """Farm-wide mean response time in units of the mean job size."""
        return self.mean_response_time / self.mean_service_time

    def response_time_percentile(self, percentile: float = 95.0) -> float:
        """Farm-wide response-time percentile, seconds."""
        values = self.response_times
        return float(np.percentile(values, percentile)) if values.size else math.nan

    @property
    def meets_budget(self) -> bool:
        """Whether the farm-wide normalised mean response time meets the budget.

        A farm that completed no jobs has no latency evidence at all, so it
        explicitly does *not* meet the budget — rather than relying on the
        accidental falseness of a ``nan <= budget`` comparison.
        """
        if self.response_times.size == 0:
            return False
        return self.normalized_mean_response_time <= self.response_time_budget

    # -- tenancy -----------------------------------------------------------------------

    @cached_property
    def _arrival_order_response_times(self) -> np.ndarray:
        """Job response times scattered back to arrival order.

        Each server's response-time array is arrival-ordered within that
        server, so scattering through the dispatch assignment reconstructs
        the global arrival-order array exactly.  Needs ``tenancy`` (which
        carries the assignment).
        """
        assert self.tenancy is not None
        assignment = self.tenancy.assignment
        response_times = np.empty(assignment.size, dtype=float)
        for server, result in enumerate(self.per_server):
            if result is None:
                continue
            response_times[assignment == server] = result.response_times
        return response_times

    def tenant_rows(self) -> tuple[TenantOutcome, ...]:
        """Per-tenant latency rows (empty on single-tenant/strictest runs).

        Each row judges the tenant's own response times against the
        tenant's own budget: job count, mean, p95/p99, ``meets_budget``
        and slack.
        """
        if self.tenancy is None:
            return ()
        return tenant_outcomes(
            self.tenancy.qos,
            self.tenancy.tenant_ids,
            self._arrival_order_response_times,
            self.mean_service_time,
            self.duration,
        )

    def tenant_meets_budget(self) -> dict[str, bool]:
        """Per-tenant SLA verdicts, keyed by tenant name."""
        return {row.name: row.meets_budget for row in self.tenant_rows()}

    # -- power ----------------------------------------------------------------------------

    @property
    def total_energy(self) -> float:
        """Total energy drawn by the farm, joules.

        Active servers' epoch loops, plus parked/idle servers' accounted
        idle energy, plus the controller's wake setup energy (zero on
        controller-less runs) — the closed accounting the property suite
        asserts.
        """
        active = sum(result.total_energy for result in self.active_servers)
        return active + sum(self.idle_energies or ()) + self.setup_energy

    @property
    def duration(self) -> float:
        """Observation span (the longest per-server duration), seconds."""
        return max(result.total_duration for result in self.active_servers)

    @property
    def total_average_power(self) -> float:
        """Farm-wide average power: summed energy over the common span, watts."""
        return self.total_energy / self.duration

    @property
    def average_power_per_server(self) -> float:
        """Mean per-server power, watts.

        Parked servers contribute their sleep-walk power when idle energy
        was accounted (``idle_energies``), so this stays continuous in the
        per-server job count; without idle accounting it falls back to the
        mean over active servers only.
        """
        powers = []
        for index, result in enumerate(self.per_server):
            if result is not None:
                powers.append(result.average_power)
            elif self.idle_energies is not None:
                powers.append(self.idle_energies[index] / self.duration)
        return float(np.mean(powers))

    # -- reporting -----------------------------------------------------------------------------

    def state_selection_fractions(self) -> dict[str, float]:
        """Epoch-weighted distribution of selected states across the farm."""
        counts: dict[str, int] = {}
        for result in self.active_servers:
            for state, count in result.state_selection_counts().items():
                counts[state] = counts.get(state, 0) + count
        total = sum(counts.values())
        return {state: count / total for state, count in counts.items()}

    def summary(self) -> Mapping[str, float | str]:
        """Headline farm metrics as a flat dictionary."""
        return {
            "servers": float(self.num_servers),
            "active_servers": float(len(self.active_servers)),
            "num_jobs": float(self.num_jobs),
            "normalized_mean_response_time": self.normalized_mean_response_time,
            "response_time_budget": self.response_time_budget,
            "meets_budget": float(self.meets_budget),
            "total_average_power_w": self.total_average_power,
            "average_power_per_server_w": self.average_power_per_server,
        }

    def per_server_rows(self) -> list[dict[str, float | str]]:
        """One row per server slot: name, jobs, latency and power.

        Idle servers (slots whose stream was empty) report zero jobs, NaN
        latency, and their sleep-walk power when idle energy was accounted,
        keeping the row count equal to the farm size.
        """
        rows: list[dict[str, float | str]] = []
        for index, result in enumerate(self.per_server):
            name = (
                self.server_names[index]
                if self.server_names is not None
                else f"server-{index}"
            )
            if result is None:
                idle_power = (
                    self.idle_energies[index] / self.duration
                    if self.idle_energies is not None
                    else math.nan
                )
                rows.append(
                    {
                        "server": name,
                        "num_jobs": 0.0,
                        "mean_response_time_s": math.nan,
                        "average_power_w": idle_power,
                    }
                )
                continue
            rows.append(
                {
                    "server": name,
                    "num_jobs": float(result.num_jobs),
                    "mean_response_time_s": result.mean_response_time,
                    "average_power_w": result.average_power,
                }
            )
        return rows


@dataclass(frozen=True)
class ServerSpec:
    """Full description of one server in a (possibly heterogeneous) farm.

    Parameters
    ----------
    name:
        Label used in reports, e.g. ``"xeon-0"`` or ``"atom-2"``.
    power_model:
        This server's platform power model (Xeon-class, Atom-class, ...).
    strategy_factory, predictor_factory:
        Zero-argument callables producing this server's strategy and
        predictor.  Called once per :meth:`ServerFarm.run`; each call must
        return a *fresh* object so per-server state (policy-manager RNGs, LMS
        weights) is never shared across servers or threads.
    config:
        This server's runtime configuration (epoch length, ``rho_b``,
        over-provisioning guard band).
    scaling:
        Service-time/frequency dependence of this server's jobs; ``None``
        selects the CPU-bound default.
    max_frequency:
        The DVFS frequency ceiling a front-end dispatcher should assume for
        this server, in (0, 1] of the reference full-frequency setting.
        Together with ``scaling`` it determines :attr:`dispatch_speed`, the
        rate at which work-tracking dispatchers estimate this server retires
        nominal demand.  It does not constrain the server's own policy
        search — it is the load balancer's provisioning assumption.
    """

    name: str
    power_model: ServerPowerModel
    strategy_factory: Callable[[], PowerManagementStrategy]
    predictor_factory: Callable[[], UtilizationPredictor]
    config: RuntimeConfig = field(default_factory=RuntimeConfig)
    scaling: ServiceScaling | None = None
    max_frequency: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a server spec needs a non-empty name")
        if not 0.0 < self.max_frequency <= 1.0:
            raise ConfigurationError(
                f"max_frequency must lie in (0, 1], got {self.max_frequency}"
            )

    @property
    def dispatch_speed(self) -> float:
        """Relative rate at which this server retires nominal demand seconds.

        A nominal demand of ``d`` seconds takes ``d / dispatch_speed``
        wall-clock seconds at this server's frequency ceiling under its
        service-scaling rule: 1.0 for a full-frequency CPU-bound server,
        below 1.0 for frequency-capped platforms, and exactly 1.0 for
        memory-bound scaling (frequency cannot slow those jobs down).
        """
        scaling = self.scaling or cpu_bound()
        return 1.0 / scaling.time_factor(self.max_frequency)


@dataclass
class ServerFarm:
    """A heterogeneous farm: one explicit :class:`ServerSpec` per server.

    Each server runs its own :class:`~repro.core.runtime.SleepScaleRuntime`
    over the sub-stream the dispatcher assigns to it, with its own platform
    power model, strategy (hence policy manager), predictor and config.

    Parameters
    ----------
    servers:
        One spec per server.  Order defines the server indices the dispatcher
        assigns to.
    spec:
        Statistical description of the *offered* workload, shared farm-wide:
        it normalises response times and feeds synthetic characterisation
        streams when a server has no job log yet.
    dispatcher:
        How arriving jobs are split across servers (round-robin by default;
        see :mod:`repro.cluster.dispatch` for least-loaded and power-aware).
        Work-tracking dispatchers receive :attr:`dispatch_speeds` so their
        backlog estimates are speed-aware on heterogeneous farms.
    max_workers:
        Pool size for the per-server epoch loops (thread pool by default
        when > 1; see ``executor``).  Results are identical to the serial
        run because no state is shared between servers.
    executor:
        How the per-server epoch loops execute: ``None`` keeps the
        historical behaviour (thread pool iff ``max_workers > 1``),
        ``"serial"``/``"thread"``/``"process"`` select explicitly, and any
        :class:`~repro.concurrency.Executor` instance is used as-is.  The
        process executor shards the farm across worker processes via
        picklable :class:`ServerShardTask`s — every ``ServerSpec`` factory
        must then be picklable — and produces bit-identical results to the
        serial and thread paths (pinned by
        ``tests/cluster/test_executor_parity.py``).
    chunk_jobs:
        When set, :meth:`run` streams the trace through the farm in
        arrival-ordered chunks of this many jobs (see :meth:`run`).
    trace_backend:
        Where the trace's arrays live while the farm runs (``"memory"``,
        ``"shm"``, ``"mmap"`` — see :mod:`repro.workloads.storage`).  With
        ``"shm"`` or ``"mmap"``, the process executor switches to zero-copy
        sharding: the trace (and the server-grouped job order) is published
        into a :class:`~repro.workloads.storage.SharedTraceArena` once and
        shard tasks carry constant-size descriptors instead of pickled
        sub-streams.  ``"mmap"`` additionally spills an in-memory trace to
        a temporary ``.npy`` file and memory-maps it, so the farm's working
        arrays live on disk (traces loaded via
        :meth:`JobTrace.from_file(mmap=True) <repro.workloads.jobs.JobTrace.from_file>`
        are used as-is).  The backend is result-invisible: all backends
        produce bit-identical :class:`FarmResult`\\ s.
    search_cache:
        Optional :class:`~repro.core.search.CharacterizationCache` shared
        by every policy-search strategy of the farm (attached to each
        strategy right after its factory builds it).  Sharing is always
        sound — cache keys carry the full trace/space/power-model/QoS
        identity — and pays off for servers with identical spec, QoS and
        candidate space, whose repeated characterisations collapse to one.
        The cache is thread-safe, so it composes with ``max_workers``.
    controller:
        Optional :class:`~repro.cluster.controller.FarmController` for
        farm-level dynamic right-sizing: before dispatch, the controller
        plans which servers are awake / waking / parked per control epoch,
        dispatch is masked to the serviceable set of each regime, and the
        result carries awake counts, wake transitions and setup energy.
        A setup-free ``always-on`` controller is bit-identical to no
        controller at all (pinned by
        ``tests/cluster/test_controller_parity.py``).  Controlled runs
        always dispatch one-shot; ``chunk_jobs`` is ignored (chunked and
        one-shot runs are pinned identical, so nothing is lost).
    qos:
        The farm-level QoS contract — the single keyword-only entry point
        that replaces the historically scattered per-call qos plumbing.
        ``None`` and ``FarmQos.strictest()`` keep the historic behaviour
        bit-for-bit (the farm's budget stays the strictest per-server
        budget); a bare :class:`~repro.core.qos.QosConstraint` is wrapped
        into ``FarmQos.strictest(constraint)`` (deprecation shim);
        ``FarmQos.per_tenant(...)`` enables per-class accounting — the
        result then carries per-tenant latency rows and SLA verdicts.
        Per-tenant mode is result-invisible at farm level: budget, energy
        and ``meets_budget`` are computed exactly as without it.
    """

    servers: Sequence[ServerSpec]
    spec: WorkloadSpec
    dispatcher: JobDispatcher = field(default_factory=RoundRobinDispatcher)
    max_workers: int | None = None
    executor: Executor | str | None = None
    chunk_jobs: int | None = None
    trace_backend: str = TRACE_BACKEND_MEMORY
    search_cache: CharacterizationCache | None = None
    controller: FarmController | None = None
    qos: FarmQos | QosConstraint | None = field(default=None, kw_only=True)

    def __post_init__(self) -> None:
        if not self.servers:
            raise ConfigurationError("a farm needs at least one server")
        if self.controller is not None and not isinstance(
            self.controller, FarmController
        ):
            raise ConfigurationError(
                "controller must be a FarmController or None, got "
                f"{type(self.controller).__name__}"
            )
        if isinstance(self.qos, QosConstraint):
            # Deprecation shim: a bare constraint means the historic
            # single-budget behaviour, made explicit.
            self.qos = FarmQos.strictest(self.qos)
        elif self.qos is not None and not isinstance(self.qos, FarmQos):
            raise ConfigurationError(
                "qos must be a FarmQos, a QosConstraint (wrapped into "
                f"FarmQos.strictest) or None, got {type(self.qos).__name__}"
            )
        if self.max_workers is not None and self.max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be at least 1, got {self.max_workers}"
            )
        # Resolving validates the name/worker combination up front, so a
        # typo'd executor fails at construction, not mid-run.
        resolve_executor(self.executor, self.max_workers)
        validate_trace_backend(self.trace_backend)
        if self.chunk_jobs is not None and self.chunk_jobs < 1:
            raise ConfigurationError(
                f"chunk_jobs must be at least 1, got {self.chunk_jobs}"
            )
        names = [server.name for server in self.servers]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"server names must be unique, got {names}"
            )

    @property
    def num_servers(self) -> int:
        """Number of servers in the farm."""
        return len(self.servers)

    @property
    def platform_names(self) -> tuple[str, ...]:
        """The distinct power-model names present in the farm, in order."""
        return tuple(dict.fromkeys(s.power_model.name for s in self.servers))

    @property
    def is_heterogeneous(self) -> bool:
        """Whether the farm mixes at least two distinct platforms."""
        return len(self.platform_names) > 1

    @property
    def dispatch_speeds(self) -> tuple[float, ...]:
        """Per-server demand-retirement speeds handed to the dispatcher."""
        return tuple(server.dispatch_speed for server in self.servers)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def _build_runtime(self, index: int) -> SleepScaleRuntime:
        return _build_server_runtime(
            self.servers[index], self.spec, self.search_cache
        )

    def _resolve_executor(self) -> Executor:
        return resolve_executor(self.executor, self.max_workers)

    def _shard_task(self, index: int, stream: JobTrace) -> ServerShardTask:
        return ServerShardTask(
            server=self.servers[index],
            spec=self.spec,
            jobs=stream,
            use_cache=self.search_cache is not None,
        )

    def _validate_fresh_instances(
        self, runtimes: Sequence[SleepScaleRuntime]
    ) -> None:
        """Threaded runs require per-server strategy/predictor objects."""
        for label, instances in (
            ("strategy", [runtime._strategy for runtime in runtimes]),
            ("predictor", [runtime._predictor for runtime in runtimes]),
        ):
            if len({id(instance) for instance in instances}) != len(instances):
                raise ConfigurationError(
                    f"the {label} factory must return a fresh object per "
                    "server when max_workers > 1; a shared instance "
                    "would race across server threads"
                )

    def _idle_energies(
        self,
        per_server: Sequence[RuntimeResult | None],
        horizon: float,
        spare_runtimes: Sequence[SleepScaleRuntime] | None = None,
        parked_seconds: Sequence[float] | None = None,
    ) -> list[float]:
        """Sleep-walk energy for servers the dispatcher parked entirely.

        *spare_runtimes* lets the chunked path reuse the (never-fed, hence
        still fresh) runtimes it already built instead of invoking the
        factories a second time.

        *parked_seconds* (controlled runs) is the span the controller held
        each server in the deep-parked state: that span is charged once at
        :data:`PARKED_STATE` system power, and the sleep-walk proration
        covers only the remaining awake-but-jobless span
        (``already_covered`` keeps the two spans disjoint — charging the
        parked span under both rates was the double-count bug this
        parameter fixed).
        """
        idle_energies = [0.0] * len(per_server)
        for index, result in enumerate(per_server):
            if result is not None:
                continue
            covered = (
                min(max(parked_seconds[index], 0.0), horizon)
                if parked_seconds is not None
                else 0.0
            )
            runtime = (
                spare_runtimes[index]
                if spare_runtimes is not None
                else self._build_runtime(index)
            )
            idle_run = runtime.run(JobTrace.empty(), horizon=horizon)
            idle_energies[index] = prorated_idle_energy(
                idle_run.total_energy,
                idle_run.total_duration,
                horizon,
                already_covered=covered,
            )
            if covered > 0:
                parked_power = self.servers[index].power_model.system_power(
                    PARKED_STATE
                )
                idle_energies[index] += parked_power * covered
        return idle_energies

    def _tenant_labels(self, jobs: JobTrace) -> np.ndarray | None:
        """The per-tenant label array for *jobs*, or ``None`` outside per-tenant mode.

        An unlabelled trace is legal only for a single declared tenant
        (every job is tenant 0); labels out of range of the tenant table
        are a configuration error.
        """
        qos = self.qos
        if qos is None or not isinstance(qos, FarmQos) or not qos.is_per_tenant:
            return None
        labels = jobs.tenant_ids
        if labels is None:
            if len(qos.tenants) == 1:
                return np.zeros(len(jobs), dtype=np.int64)
            raise ConfigurationError(
                f"FarmQos.per_tenant declares {len(qos.tenants)} tenants "
                "but the job trace carries no tenant labels; attach them "
                "with JobTrace.with_tenant_ids"
            )
        labels = np.asarray(labels)
        if labels.size and int(labels.max()) >= len(qos.tenants):
            raise ConfigurationError(
                f"tenant label {int(labels.max())} out of range for "
                f"{len(qos.tenants)} declared tenant(s)"
            )
        return labels

    def _assemble_result(
        self,
        per_server: list[RuntimeResult | None],
        spare_runtimes: Sequence[SleepScaleRuntime] | None = None,
        *,
        schedule: ControllerSchedule | None = None,
        setup_energy: float = 0.0,
        jobs: JobTrace | None = None,
        assignment: np.ndarray | None = None,
    ) -> FarmResult:
        if all(result is None for result in per_server):
            raise ConfigurationError("no server received any job")
        # Heterogeneous configs may imply different per-server budgets; the
        # farm answers to the strictest one (identical in the homogeneous case).
        budget = min(
            result.response_time_budget
            for result in per_server
            if result is not None
        )
        # Servers the dispatcher parked entirely still burn power walking
        # their sleep sequences; run their epoch loops over an empty stream
        # for the same span so farm totals stay continuous in the job count.
        horizon = max(
            result.total_duration for result in per_server if result is not None
        )
        tenancy = None
        if jobs is not None and assignment is not None:
            labels = self._tenant_labels(jobs)
            if labels is not None:
                assert isinstance(self.qos, FarmQos)
                tenancy = TenancyAccounting(
                    qos=self.qos,
                    tenant_ids=labels,
                    assignment=np.asarray(assignment, dtype=np.int64),
                )
        return FarmResult(
            per_server=tuple(per_server),
            mean_service_time=self.spec.mean_service_time,
            response_time_budget=budget,
            server_names=tuple(server.name for server in self.servers),
            idle_energies=tuple(
                self._idle_energies(
                    per_server,
                    horizon,
                    spare_runtimes,
                    parked_seconds=(
                        schedule.parked_seconds if schedule is not None else None
                    ),
                )
            ),
            awake_counts=schedule.awake_counts if schedule is not None else None,
            setup_energy=setup_energy,
            wake_transitions=(
                schedule.transitions if schedule is not None else None
            ),
            tenancy=tenancy,
        )

    def run(self, jobs: JobTrace, *, chunk_jobs: int | None = None) -> FarmResult:
        """Dispatch *jobs* across the farm and run every server's epoch loop.

        With ``chunk_jobs`` (argument, or the field as default; ``0`` forces
        one-shot) the trace is dispatched and fed to the per-server epoch
        loops in arrival-ordered chunks of that many jobs: the dispatcher's
        :class:`~repro.cluster.dispatch.StreamAssigner` carries its state
        across chunks and every server consumes its share through a
        :class:`~repro.core.runtime.RuntimeSession`, so no per-server copy
        of the whole stream ever exists.  Chunked and one-shot runs produce
        identical results.
        """
        if chunk_jobs is None:
            chunk_jobs = self.chunk_jobs
        elif chunk_jobs == 0:
            chunk_jobs = None
        elif chunk_jobs < 1:
            raise ConfigurationError(
                f"chunk_jobs must be at least 1, got {chunk_jobs}"
            )
        if (
            self.trace_backend == TRACE_BACKEND_MMAP
            and len(jobs) > 0
            and not is_mmap_backed(jobs.arrival_times)
        ):
            # The mmap backend means "the farm's working trace lives on
            # disk": spill an in-memory trace to a temporary .npy file and
            # re-open it memory-mapped.  The binary round trip is exact, so
            # results are bit-identical to the in-memory run; traces that
            # are already memmap-backed (JobTrace.from_file) pass through.
            with tempfile.TemporaryDirectory(prefix="repro_trace_") as tmp:
                path = f"{tmp}/trace.npy"
                jobs.to_file(path)
                spilled = JobTrace.from_file(path, mmap=True, validate=False)
                if jobs.tenant_ids is not None:
                    # The on-disk (2, n) format carries arrivals and demands
                    # only; tenant labels stay in memory across the spill.
                    spilled = spilled.with_tenant_ids(jobs.tenant_ids)
                return self._run_resolved(spilled, chunk_jobs)
        return self._run_resolved(jobs, chunk_jobs)

    def _run_resolved(self, jobs: JobTrace, chunk_jobs: int | None) -> FarmResult:
        # Fail fast on a per-tenant farm fed a mislabelled trace, whatever
        # run path is about to execute.
        self._tenant_labels(jobs)
        if self.controller is not None:
            # The controller's schedule is a pure function of the full
            # trace, and chunked runs are pinned identical to one-shot runs
            # anyway, so controlled runs always take the one-shot path.
            return self._run_controlled(jobs)
        if chunk_jobs is not None and chunk_jobs < len(jobs):
            if isinstance(self._resolve_executor(), ProcessExecutor):
                # Process sharding ships each server's whole sub-stream
                # across the process boundary once; feeding chunk by chunk
                # would serialise every chunk separately for no memory win
                # (the parent materialises the shards either way).  Chunked
                # and one-shot runs are pinned identical, so fall through.
                return self._run_one_shot(jobs)
            return self._run_chunked(jobs, chunk_jobs)
        return self._run_one_shot(jobs)

    def _run_controlled(self, jobs: JobTrace) -> FarmResult:
        """One-shot run under the farm controller's awake/park schedule.

        Plan first (pure function of the trace), mask dispatch to the
        schedule's serviceable regimes, then execute the per-server shards
        exactly as an uncontrolled run would — the same
        :meth:`_per_server_results` machinery serves every executor and
        trace backend, which is what makes the setup-free always-on
        controller bit-identical to no controller at all.
        """
        controller = self.controller
        assert controller is not None
        if controller.epoch_minutes is not None:
            epoch_seconds = minutes(controller.epoch_minutes)
        else:
            # Default to the coarsest per-server epoch so one control
            # decision never slices a server's own policy-search epoch.
            epoch_seconds = max(
                server.config.epoch_seconds for server in self.servers
            )
        efficiency_order = [
            int(index)
            for index in np.argsort(
                [s.power_model.idle_power(1.0) for s in self.servers],
                kind="stable",
            )
        ]
        schedule = controller.plan(
            jobs.arrival_times,
            jobs.service_demands,
            num_servers=self.num_servers,
            epoch_seconds=epoch_seconds,
            efficiency_order=efficiency_order,
        )
        assignment = controller_assignment(
            jobs,
            self.dispatcher,
            schedule,
            num_servers=self.num_servers,
            server_speeds=self.dispatch_speeds,
        )
        per_server = self._per_server_results(jobs, assignment)
        setup_energy = sum(
            schedule.wake_counts[index]
            * controller.setup.transition_energy(
                self.servers[index].power_model.peak_power()
            )
            for index in range(self.num_servers)
        )
        return self._assemble_result(
            per_server,
            schedule=schedule,
            setup_energy=setup_energy,
            jobs=jobs,
            assignment=assignment,
        )

    def _run_one_shot(self, jobs: JobTrace) -> FarmResult:
        assignment = self.dispatcher.validated_assignment(
            jobs, self.num_servers, server_speeds=self.dispatch_speeds
        )
        return self._assemble_result(
            self._per_server_results(jobs, assignment),
            jobs=jobs,
            assignment=assignment,
        )

    def _per_server_results(
        self, jobs: JobTrace, assignment: np.ndarray
    ) -> list[RuntimeResult | None]:
        """Run every server's epoch loop for one validated assignment.

        The assignment → execution split lets the controlled and
        uncontrolled paths share every executor/backend combination: only
        *how the assignment is computed* differs between them.
        """
        if self.trace_backend != TRACE_BACKEND_MEMORY and isinstance(
            self._resolve_executor(), ProcessExecutor
        ):
            return self._process_zero_copy_results(jobs, assignment)
        # A boolean mask preserves order, so the masked views of a
        # validated trace still satisfy every invariant: trusted ctor.
        # (This is exactly the split JobDispatcher.dispatch performs.)
        streams: list[JobTrace | None] = []
        for server in range(self.num_servers):
            mask = assignment == server
            if not np.any(mask):
                streams.append(None)
                continue
            streams.append(
                JobTrace.from_validated_arrays(
                    jobs.arrival_times[mask], jobs.service_demands[mask]
                )
            )
        per_server: list[RuntimeResult | None] = [None] * len(streams)
        active = [
            (index, stream)
            for index, stream in enumerate(streams)
            if stream is not None
        ]
        if not active:
            raise ConfigurationError("no server received any job")
        executor = self._resolve_executor()
        if isinstance(executor, ProcessExecutor):
            # Worker processes rebuild each server's runtime from its
            # picklable spec, so nothing mutable crosses the boundary.
            results = executor.map(
                run_server_shard,
                [self._shard_task(index, stream) for index, stream in active],
            )
        else:
            # Build the runtimes up front (in the caller's thread) so the
            # threaded path can check the factories actually hand out
            # per-server state instead of silently racing on a shared object.
            runtimes = [self._build_runtime(index) for index, _ in active]
            if not isinstance(executor, SerialExecutor):
                self._validate_fresh_instances(runtimes)
            results = executor.map(
                _run_runtime_on_stream,
                [
                    (runtime, stream)
                    for runtime, (_, stream) in zip(runtimes, active, strict=True)
                ],
            )
        for (index, _), result in zip(active, results, strict=True):
            per_server[index] = result
        return per_server

    def _process_zero_copy_results(
        self, jobs: JobTrace, assignment: np.ndarray
    ) -> list[RuntimeResult | None]:
        """One-shot process sharding through a shared-trace arena.

        Instead of materialising per-server :class:`JobTrace` copies and
        pickling each into its shard (O(trace) serialised bytes per farm),
        the parent gathers the trace into server-grouped order, publishes
        the grouped arrays once, and ships constant-size descriptors
        narrowed to each server's contiguous range.  Grouping uses a
        *stable* argsort of the assignment, so within each server the jobs
        keep arrival order — the grouped range for server ``s`` is exactly
        ``arrivals[np.nonzero(assignment == s)]``, making the worker-side
        contiguous copies bit-identical to the memory path's masked copies
        (hence bit-identical ``FarmResult``\\ s).
        """
        counts = np.bincount(assignment, minlength=self.num_servers)
        active = [
            index for index in range(self.num_servers) if counts[index] > 0
        ]
        if not active:
            raise ConfigurationError("no server received any job")
        order = np.argsort(assignment, kind="stable")
        offsets = np.concatenate(([0], np.cumsum(counts)))
        executor = self._resolve_executor()
        use_cache = self.search_cache is not None
        with contextlib.ExitStack() as stack:
            directory = (
                stack.enter_context(
                    tempfile.TemporaryDirectory(prefix="repro_arena_")
                )
                if self.trace_backend == TRACE_BACKEND_MMAP
                else None
            )
            # The with-block guarantees segment unlink on *every* exit —
            # including a worker crash surfacing as an executor exception.
            arena = stack.enter_context(
                SharedTraceArena(self.trace_backend, directory=directory)
            )
            arrivals_desc = arena.publish(jobs.arrival_times[order], "arrivals")
            demands_desc = arena.publish(
                jobs.service_demands[order], "demands"
            )
            tasks = [
                SharedServerShardTask(
                    server=self.servers[index],
                    spec=self.spec,
                    use_cache=use_cache,
                    arrivals=arrivals_desc.narrow(
                        int(offsets[index]), int(counts[index])
                    ),
                    demands=demands_desc.narrow(
                        int(offsets[index]), int(counts[index])
                    ),
                )
                for index in active
            ]
            results = executor.map(run_shared_server_shard, tasks)
        per_server: list[RuntimeResult | None] = [None] * self.num_servers
        for index, result in zip(active, results, strict=True):
            per_server[index] = result
        return per_server

    def _run_chunked(self, jobs: JobTrace, chunk_jobs: int) -> FarmResult:
        assigner = self.dispatcher.assigner(
            self.num_servers,
            server_speeds=self.dispatch_speeds,
            total_jobs=len(jobs),
            mean_service_demand=(
                jobs.mean_service_demand if len(jobs) > 0 else None
            ),
            tenant_ids=jobs.tenant_ids,
        )
        # Per-tenant accounting needs the full assignment; accumulate the
        # per-chunk assignments only when a per-tenant FarmQos asks for it
        # (the chunked path otherwise never materialises the whole array).
        keep_assignment = (
            isinstance(self.qos, FarmQos) and self.qos.is_per_tenant
        )
        assignment_chunks: list[np.ndarray] = []
        # One runtime + streaming session per server, created up front so
        # the freshness validation happens before any thread runs.  (The
        # process executor never reaches this path — ``run`` routes it to
        # the one-shot sharding path.)
        executor = self._resolve_executor()
        runtimes = [self._build_runtime(index) for index in range(self.num_servers)]
        if not isinstance(executor, SerialExecutor):
            self._validate_fresh_instances(runtimes)
        sessions: list[RuntimeSession] = [runtime.stream() for runtime in runtimes]
        fed_jobs = [0] * self.num_servers

        arrivals = jobs.arrival_times
        demands = jobs.service_demands
        for start in range(0, len(jobs), chunk_jobs):
            chunk_arrivals = arrivals[start : start + chunk_jobs]
            chunk_demands = demands[start : start + chunk_jobs]
            assignment = np.asarray(
                assigner.assign_chunk(chunk_arrivals, chunk_demands)
            )
            if assignment.shape != (len(chunk_arrivals),):
                raise ConfigurationError(
                    "dispatcher returned an assignment of the wrong shape"
                )
            if (
                assignment.min(initial=0) < 0
                or assignment.max(initial=0) >= self.num_servers
            ):
                raise ConfigurationError(
                    "dispatcher assigned a job to a non-existent server"
                )
            if keep_assignment:
                assignment_chunks.append(
                    np.asarray(assignment, dtype=np.int64).copy()
                )
            targets = np.unique(assignment)
            work: list[tuple[RuntimeSession, np.ndarray, np.ndarray]] = []
            for server in targets.tolist():
                mask = assignment == server
                work.append(
                    (sessions[server], chunk_arrivals[mask], chunk_demands[mask])
                )
                fed_jobs[server] += int(np.count_nonzero(mask))
            executor.map(_feed_session, work)
        if not any(fed_jobs):
            raise ConfigurationError("no server received any job")
        per_server: list[RuntimeResult | None] = [None] * self.num_servers
        active = [index for index, count in enumerate(fed_jobs) if count > 0]
        results = executor.map(
            _finish_session, [sessions[index] for index in active]
        )
        for index, result in zip(active, results, strict=True):
            per_server[index] = result
        # Parked servers' runtimes were built but never fed — reuse them for
        # the idle accounting instead of invoking the factories again.
        full_assignment = (
            np.concatenate(assignment_chunks) if assignment_chunks else None
        )
        return self._assemble_result(
            per_server,
            spare_runtimes=runtimes,
            jobs=jobs if keep_assignment else None,
            assignment=full_assignment,
        )


@dataclass
class ClusterRuntime:
    """Runs one independent SleepScale (or baseline) instance per server.

    Parameters
    ----------
    num_servers:
        Farm size.
    power_model, spec:
        Shared (homogeneous) server power model and workload description.
    strategy_factory, predictor_factory:
        Called once per server index to create that server's strategy and
        predictor (each server must own its state).
    config:
        Runtime configuration shared by all servers.
    dispatcher:
        How arriving jobs are split across servers (round-robin by default).
    max_workers:
        When > 1, run the per-server epoch loops on a pool of this size.
        The factories must return a *fresh* strategy/predictor per server
        index (validated at run time for the threaded path) so no mutable
        state is shared across threads; the result is then identical to the
        serial run regardless of scheduling, and the farm-level
        policy-search overhead scales with ``num_servers / max_workers``
        instead of ``num_servers``.
    executor:
        Executor for the per-server epoch loops (see :class:`ServerFarm`);
        ``"process"`` requires the per-index factories themselves to be
        picklable (module-level functions or factory objects — they are
        wrapped per slot in picklable :class:`PerIndexFactory` instances).
    scaling:
        Service-time/frequency dependence shared by all servers (``None``
        selects the CPU-bound default).
    max_frequency:
        Dispatch-visible frequency ceiling shared by all servers; threaded
        into every :class:`ServerSpec` by :meth:`as_server_farm` so the
        work-tracking dispatchers see the same speed model either way.
    chunk_jobs:
        When set, farm runs stream the trace in arrival-ordered chunks of
        this many jobs (see :meth:`ServerFarm.run`).
    trace_backend:
        Trace storage backend threaded into the built farm (see
        :class:`ServerFarm` and :mod:`repro.workloads.storage`).
    search_cache:
        Optional characterisation cache shared by every server's strategy
        (see :class:`ServerFarm`); in a homogeneous cluster all servers
        have identical spec/QoS/space, the best case for sharing.
    controller:
        Optional farm-level right-sizing controller threaded into the
        built farm (see :class:`ServerFarm` and
        :mod:`repro.cluster.controller`).
    qos:
        Farm-level QoS contract threaded into the built farm (see
        :class:`ServerFarm`); keyword-only, with the same
        bare-``QosConstraint`` → ``FarmQos.strictest`` shim.
    """

    num_servers: int
    power_model: ServerPowerModel
    spec: WorkloadSpec
    strategy_factory: StrategyFactory
    predictor_factory: PredictorFactory
    config: RuntimeConfig = field(default_factory=RuntimeConfig)
    dispatcher: JobDispatcher = field(default_factory=RoundRobinDispatcher)
    max_workers: int | None = None
    executor: Executor | str | None = None
    scaling: ServiceScaling | None = None
    max_frequency: float = 1.0
    chunk_jobs: int | None = None
    trace_backend: str = TRACE_BACKEND_MEMORY
    search_cache: CharacterizationCache | None = None
    controller: FarmController | None = None
    qos: FarmQos | QosConstraint | None = field(default=None, kw_only=True)

    def __post_init__(self) -> None:
        if self.num_servers < 1:
            raise ConfigurationError(
                f"a farm needs at least one server, got {self.num_servers}"
            )
        if self.max_workers is not None and self.max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be at least 1, got {self.max_workers}"
            )
        resolve_executor(self.executor, self.max_workers)
        validate_trace_backend(self.trace_backend)
        if isinstance(self.qos, QosConstraint):
            self.qos = FarmQos.strictest(self.qos)
        elif self.qos is not None and not isinstance(self.qos, FarmQos):
            raise ConfigurationError(
                "qos must be a FarmQos, a QosConstraint (wrapped into "
                f"FarmQos.strictest) or None, got {type(self.qos).__name__}"
            )

    def as_server_farm(self) -> ServerFarm:
        """The equivalent heterogeneous farm: ``num_servers`` identical specs.

        The per-index factories are frozen into zero-argument
        :class:`PerIndexFactory` objects per server slot, so running the
        returned :class:`ServerFarm` is identical to running this cluster
        directly (and stays picklable for the process executor whenever the
        per-index factories are).  The shared service scaling and frequency
        ceiling are threaded into every spec, so speed-aware dispatch sees
        the same (homogeneous) speed on every server.
        """
        servers = tuple(
            ServerSpec(
                name=f"server-{index}",
                power_model=self.power_model,
                strategy_factory=PerIndexFactory(self.strategy_factory, index),
                predictor_factory=PerIndexFactory(self.predictor_factory, index),
                config=self.config,
                scaling=self.scaling,
                max_frequency=self.max_frequency,
            )
            for index in range(self.num_servers)
        )
        return ServerFarm(
            servers=servers,
            spec=self.spec,
            dispatcher=self.dispatcher,
            max_workers=self.max_workers,
            executor=self.executor,
            chunk_jobs=self.chunk_jobs,
            trace_backend=self.trace_backend,
            search_cache=self.search_cache,
            controller=self.controller,
            qos=self.qos,
        )

    def run(self, jobs: JobTrace, *, chunk_jobs: int | None = None) -> FarmResult:
        """Dispatch *jobs* across the farm and run every server's epoch loop."""
        return self.as_server_farm().run(jobs, chunk_jobs=chunk_jobs)
