"""Experiment harness: one module per table/figure of the paper's evaluation.

Use :func:`repro.experiments.runner.run_experiment` (or
``python -m repro.experiments <name>``) to regenerate any of them; the
benchmark suite under ``benchmarks/`` wraps the same entry points with
qualitative assertions about the paper's reported shapes.
"""

from repro.experiments.base import (
    ExperimentConfig,
    ExperimentResult,
    format_result,
    format_rows,
)

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "format_result",
    "format_rows",
]
