"""Tests for epoch records and runtime results."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.epoch import EpochRecord, RuntimeResult, epochs_to_rows
from repro.exceptions import ConfigurationError


def make_epoch(
    index=0,
    state="C6S0(i)",
    frequency=0.7,
    applied=0.8,
    over=True,
    num_jobs=100,
    energy=30_000.0,
    duration=300.0,
) -> EpochRecord:
    return EpochRecord(
        index=index,
        start_time=index * duration,
        duration=duration,
        predicted_utilization=0.4,
        observed_utilization=0.45,
        policy_label="p",
        sleep_state=state,
        selected_frequency=frequency,
        applied_frequency=applied,
        over_provisioned=over,
        num_jobs=num_jobs,
        mean_response_time=0.3,
        p95_response_time=0.8,
        energy_joules=energy,
    )


def make_result(epochs, responses=None, budget=5.0) -> RuntimeResult:
    responses = np.asarray(
        responses if responses is not None else [0.2, 0.3, 0.4], dtype=float
    )
    total_energy = sum(e.energy_joules for e in epochs)
    total_duration = sum(e.duration for e in epochs)
    return RuntimeResult(
        strategy="SS",
        predictor="LC",
        epochs=tuple(epochs),
        response_times=responses,
        total_energy=total_energy,
        total_duration=total_duration,
        mean_service_time=0.194,
        response_time_budget=budget,
    )


class TestEpochRecord:
    def test_average_power(self):
        epoch = make_epoch(energy=60_000.0, duration=300.0)
        assert epoch.average_power == pytest.approx(200.0)

    def test_had_jobs(self):
        assert make_epoch(num_jobs=5).had_jobs
        assert not make_epoch(num_jobs=0).had_jobs

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_epoch(duration=0.0)
        with pytest.raises(ConfigurationError):
            make_epoch(num_jobs=-1)

    def test_rows_export(self):
        rows = epochs_to_rows([make_epoch(0), make_epoch(1)])
        assert len(rows) == 2
        assert rows[1]["index"] == 1
        assert rows[0]["sleep_state"] == "C6S0(i)"


class TestRuntimeResult:
    def test_response_time_metrics(self):
        result = make_result([make_epoch()], responses=[0.97, 0.97])
        assert result.mean_response_time == pytest.approx(0.97)
        assert result.normalized_mean_response_time == pytest.approx(5.0)
        assert result.num_jobs == 2

    def test_meets_budget_boundary_and_violation(self):
        at_budget = make_result([make_epoch()], responses=[0.97])
        assert at_budget.meets_budget  # exactly at the budget counts as met
        violating = make_result([make_epoch()], responses=[1.5])
        assert not violating.meets_budget

    def test_average_power(self):
        epochs = [make_epoch(0, energy=30_000.0), make_epoch(1, energy=60_000.0)]
        result = make_result(epochs)
        assert result.average_power == pytest.approx(90_000.0 / 600.0)

    def test_percentile_and_energy_per_job(self):
        result = make_result([make_epoch()], responses=[0.1, 0.2, 0.3, 10.0])
        assert result.response_time_percentile(50.0) == pytest.approx(0.25)
        assert result.energy_per_job == pytest.approx(30_000.0 / 4)

    def test_state_selection_counts(self):
        epochs = [
            make_epoch(0, state="C6S0(i)"),
            make_epoch(1, state="C6S0(i)"),
            make_epoch(2, state="C0(i)S0(i)"),
        ]
        result = make_result(epochs)
        assert result.state_selection_counts() == {"C6S0(i)": 2, "C0(i)S0(i)": 1}
        fractions = result.state_selection_fractions()
        assert fractions["C6S0(i)"] == pytest.approx(2 / 3)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_frequency_and_over_provisioning_summaries(self):
        epochs = [
            make_epoch(0, frequency=0.6, over=True),
            make_epoch(1, frequency=0.8, over=False),
        ]
        result = make_result(epochs)
        assert result.mean_selected_frequency() == pytest.approx(0.7)
        assert result.over_provisioned_fraction() == pytest.approx(0.5)

    def test_empty_response_times_give_nan(self):
        result = make_result([make_epoch(num_jobs=0)], responses=[])
        assert math.isnan(result.mean_response_time)
        assert math.isnan(result.energy_per_job)

    def test_summary_keys(self):
        summary = make_result([make_epoch()]).summary()
        assert summary["strategy"] == "SS"
        assert summary["predictor"] == "LC"
        assert "average_power_w" in summary
        assert "normalized_mean_response_time" in summary

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_result([])
        with pytest.raises(ConfigurationError):
            RuntimeResult(
                strategy="SS",
                predictor="LC",
                epochs=(make_epoch(),),
                response_times=np.array([0.1]),
                total_energy=1.0,
                total_duration=0.0,
                mean_service_time=0.194,
                response_time_budget=5.0,
            )
