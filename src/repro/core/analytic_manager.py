"""Closed-form (simulation-free) policy selection.

The paper observes (Section 5.1.2, observation 3) that "often the idealized
model computes the best choice of low-power state, but not the frequency
setting", and leaves as future work a runtime that "relies simply on the
idealized model without simulation to compute the optimal policy".  This
module implements that variant: an :class:`AnalyticPolicyManager` with the
same selection interface as the simulation-based
:class:`~repro.core.policy_manager.PolicyManager`, but whose per-candidate
metrics come from the Appendix closed forms (M/M/1 with sleep states) driven
only by the predicted utilisation and the workload's mean job size.

Because it evaluates a candidate in tens of microseconds rather than
milliseconds, it makes very fine frequency grids and sub-second update
intervals practical; the ablation benchmark
(``benchmarks/test_bench_ablations.py``) quantifies what it gives up relative
to simulating the observed (non-Poisson, non-exponential) workload.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analytic.mm1_sleep import evaluate_policy
from repro.core.policy_manager import PolicyEvaluation, PolicyManager, PolicySelection
from repro.core.qos import (
    MeanResponseTimeConstraint,
    PercentileResponseTimeConstraint,
    QosConstraint,
)
from repro.core.strategies import EpochContext, PowerManagementStrategy
from repro.exceptions import ConfigurationError, PolicySelectionError
from repro.policies.policy import Policy
from repro.policies.space import PolicySpace, full_space
from repro.power.platform import ServerPowerModel
from repro.workloads.spec import WorkloadSpec


@dataclass(frozen=True)
class AnalyticEvaluation:
    """Closed-form metrics of one candidate policy (mirrors PolicyEvaluation)."""

    policy: Policy
    average_power: float
    mean_response_time: float
    normalized_mean_response_time: float
    p95_response_time: float
    meets_qos: bool
    qos_slack: float

    @property
    def frequency(self) -> float:
        """The evaluated policy's DVFS setting."""
        return self.policy.frequency

    @property
    def sleep_state(self) -> str:
        """The evaluated policy's sleep-sequence name."""
        return self.policy.sleep_state_name


class AnalyticPolicyManager:
    """Selects policies from the idealised M/M/1 closed forms.

    Parameters
    ----------
    power_model:
        The server being managed.
    policy_space:
        Candidate (frequency, state) combinations — the same object the
        simulation-based manager uses.
    qos:
        Either a mean-response-time or a 95th-percentile constraint.  The
        percentile check uses the Appendix's single-state exceedance formula,
        so it is exact for the single-state candidates the default space
        contains and an approximation for multi-state sequences.
    mean_service_time:
        The workload's mean (full-frequency) job size ``1/mu`` — the only
        workload statistic the idealised model needs besides the predicted
        utilisation.
    """

    def __init__(
        self,
        power_model: ServerPowerModel,
        policy_space: PolicySpace,
        qos: QosConstraint,
        mean_service_time: float,
    ):
        if mean_service_time <= 0:
            raise ConfigurationError(
                f"mean service time must be positive, got {mean_service_time}"
            )
        if not isinstance(
            qos, (MeanResponseTimeConstraint, PercentileResponseTimeConstraint)
        ):
            raise ConfigurationError(
                "the analytic manager supports mean and percentile constraints only"
            )
        self._power_model = power_model
        self._space = policy_space
        self._qos = qos
        self._mean_service_time = float(mean_service_time)

    @property
    def policy_space(self) -> PolicySpace:
        """The candidate policy space."""
        return self._space

    @property
    def qos(self) -> QosConstraint:
        """The constraint in force."""
        return self._qos

    # ------------------------------------------------------------------

    def _judge(self, normalized_mean: float, p95: float) -> tuple[bool, float]:
        if isinstance(self._qos, MeanResponseTimeConstraint):
            slack = self._qos.normalized_budget - normalized_mean
            return slack >= 0.0, slack
        slack = self._qos.deadline - p95
        return slack >= 0.0, slack

    def characterize(self, utilization: float) -> tuple[AnalyticEvaluation, ...]:
        """Evaluate every candidate policy in closed form at *utilization*."""
        if not 0.0 < utilization < 1.0:
            raise ConfigurationError(
                f"utilization must lie in (0, 1) for the analytic model, got {utilization}"
            )
        service_rate = 1.0 / self._mean_service_time
        arrival_rate = utilization * service_rate
        evaluations: list[AnalyticEvaluation] = []
        for policy in self._space.candidate_policies(utilization):
            point = evaluate_policy(
                arrival_rate,
                service_rate,
                policy.frequency,
                policy.sleep,
                self._power_model.active_power(policy.frequency),
                service_scaling_beta=self._space.scaling.beta,
            )
            meets, slack = self._judge(
                point.normalized_mean_response_time, point.p95_response_time
            )
            evaluations.append(
                AnalyticEvaluation(
                    policy=policy,
                    average_power=point.average_power,
                    mean_response_time=point.mean_response_time,
                    normalized_mean_response_time=point.normalized_mean_response_time,
                    p95_response_time=point.p95_response_time,
                    meets_qos=meets,
                    qos_slack=slack,
                )
            )
        if not evaluations:
            raise PolicySelectionError(
                f"no candidate policy at utilization {utilization}"
            )
        return tuple(evaluations)

    def select(self, utilization: float) -> PolicySelection:
        """The minimum-power candidate meeting the constraint at *utilization*.

        Returns the same :class:`PolicySelection` structure as the
        simulation-based manager so callers can treat the two uniformly; the
        evaluations are converted to :class:`PolicyEvaluation` records.
        """
        analytic = self.characterize(utilization)
        evaluations = [
            PolicyEvaluation(
                policy=e.policy,
                average_power=e.average_power,
                mean_response_time=e.mean_response_time,
                normalized_mean_response_time=e.normalized_mean_response_time,
                p95_response_time=e.p95_response_time,
                meets_qos=e.meets_qos,
                qos_slack=e.qos_slack,
            )
            for e in analytic
        ]
        return PolicyManager._pick(evaluations)


class AnalyticSleepScaleStrategy(PowerManagementStrategy):
    """SleepScale whose per-epoch policy search uses the closed forms.

    The epoch context's job log is ignored — only the predicted utilisation
    and the workload's mean job size enter the idealised model — which is
    exactly the simplification the paper proposes evaluating.
    """

    def __init__(
        self,
        power_model: ServerPowerModel,
        qos: QosConstraint,
        mean_service_time: float,
        frequency_step: float = 0.05,
        min_utilization: float = 0.02,
        name: str = "SS(analytic)",
    ):
        self.name = name
        self._manager = AnalyticPolicyManager(
            power_model=power_model,
            policy_space=full_space(power_model, frequency_step=frequency_step),
            qos=qos,
            mean_service_time=mean_service_time,
        )
        self._min_utilization = float(min_utilization)
        self._last_selection: PolicySelection | None = None

    @property
    def last_selection(self) -> PolicySelection | None:
        """The most recent selection's full characterisation table."""
        return self._last_selection

    def select_policy(self, context: EpochContext) -> Policy:
        utilization = min(
            max(context.predicted_utilization, self._min_utilization), 0.98
        )
        selection = self._manager.select(utilization)
        self._last_selection = selection
        return selection.policy


def analytic_sleepscale_strategy(
    power_model: ServerPowerModel,
    qos: QosConstraint,
    spec: WorkloadSpec,
    frequency_step: float = 0.05,
) -> AnalyticSleepScaleStrategy:
    """Convenience factory mirroring :func:`repro.core.strategies.sleepscale_strategy`."""
    return AnalyticSleepScaleStrategy(
        power_model=power_model,
        qos=qos,
        mean_service_time=spec.mean_service_time,
        frequency_step=frequency_step,
    )
