"""Tests for workload specifications (Table 5)."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.workloads.distributions import Exponential, HyperExponential
from repro.workloads.spec import (
    TABLE5_STATISTICS,
    WorkloadSpec,
    dns_workload,
    google_workload,
    mail_workload,
    table5,
    workload_by_name,
)


class TestTable5Presets:
    def test_dns_statistics(self):
        spec = dns_workload()
        assert spec.mean_service_time == pytest.approx(0.194)
        assert spec.interarrival.mean == pytest.approx(1.1)
        assert spec.service.cv == pytest.approx(1.0, abs=0.02)

    def test_google_statistics(self):
        spec = google_workload()
        assert spec.mean_service_time == pytest.approx(4.2e-3)
        assert spec.interarrival.mean == pytest.approx(319e-6)
        assert spec.interarrival.cv == pytest.approx(1.2, rel=1e-6)

    def test_mail_statistics_heavy_tail(self):
        spec = mail_workload()
        assert spec.mean_service_time == pytest.approx(0.092)
        assert spec.service.cv == pytest.approx(3.6, rel=1e-6)
        assert isinstance(spec.service, HyperExponential)

    def test_idealized_variant_uses_exponentials(self):
        spec = dns_workload(empirical=False)
        assert isinstance(spec.interarrival, Exponential)
        assert isinstance(spec.service, Exponential)

    def test_workload_by_name_case_insensitive(self):
        assert workload_by_name("DNS").name == "dns"
        assert workload_by_name("Google").name == "google"

    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigurationError):
            workload_by_name("bitcoin")

    def test_table5_contains_all_workloads(self):
        table = table5()
        assert set(table) == set(TABLE5_STATISTICS)
        for summary in table.values():
            assert set(summary) >= {
                "interarrival_mean_s",
                "interarrival_cv",
                "service_mean_s",
                "service_cv",
            }

    def test_google_is_most_heavily_loaded(self):
        # Google's implied utilisation (4.2 ms jobs every 319 us) exceeds 1,
        # which is why its arrival process is always re-targeted before use.
        assert google_workload().utilization > 1.0
        assert dns_workload().utilization < 0.2


class TestWorkloadSpecOperations:
    def test_rates(self):
        spec = dns_workload()
        assert spec.service_rate == pytest.approx(1.0 / 0.194)
        assert spec.arrival_rate == pytest.approx(1.0 / 1.1)
        assert spec.utilization == pytest.approx(0.194 / 1.1)

    def test_at_utilization_changes_only_arrivals(self):
        spec = dns_workload().at_utilization(0.5)
        assert spec.utilization == pytest.approx(0.5)
        assert spec.mean_service_time == pytest.approx(0.194)

    def test_at_utilization_preserves_interarrival_cv(self):
        original = google_workload()
        rescaled = original.at_utilization(0.3)
        assert rescaled.interarrival.cv == pytest.approx(original.interarrival.cv)

    def test_at_utilization_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            dns_workload().at_utilization(0.0)
        with pytest.raises(ConfigurationError):
            dns_workload().at_utilization(1.0)

    def test_with_cpu_boundedness(self):
        spec = dns_workload().with_cpu_boundedness(0.5)
        assert spec.cpu_boundedness == 0.5

    def test_invalid_cpu_boundedness(self):
        with pytest.raises(ConfigurationError):
            dns_workload().with_cpu_boundedness(1.5)

    def test_idealized_keeps_means(self):
        spec = mail_workload()
        ideal = spec.idealized()
        assert ideal.service.mean == pytest.approx(spec.service.mean)
        assert ideal.interarrival.mean == pytest.approx(spec.interarrival.mean)
        assert ideal.service.cv == 1.0
        assert ideal.name.endswith("idealized")

    def test_summary_round_trip(self):
        summary = dns_workload().summary()
        assert summary["service_mean_s"] == pytest.approx(0.194)
        assert summary["interarrival_cv"] == pytest.approx(1.1, rel=1e-6)

    def test_custom_spec_validation(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(
                name="bad",
                interarrival=Exponential(1.0),
                service=Exponential(0.1),
                cpu_boundedness=-0.1,
            )
