"""The built-in invariant rules (REP001–REP006 minus the parity rule).

Each rule encodes one contract the repo's oracle-parity discipline rests
on.  They are static approximations — documented per rule — tuned to
catch the classes of bug that have actually bitten this codebase
(PR 3's RNG-state leak, PR 5's unpicklable lambda factories) while
staying quiet on the idioms the library is built from.

REP003 (the oracle-parity registry) lives in
:mod:`repro.analysis.parity` because it is a whole-project rule, not a
per-file one.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Iterator

from repro.analysis.engine import FileContext, Finding, Rule, register_rule

__all__ = [
    "DeterminismRule",
    "FanOutConformanceRule",
    "FloatEqualityRule",
    "HygieneRule",
    "PicklabilityRule",
]


def _dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, ``None`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to the canonical dotted module/object they denote.

    ``import numpy as np`` → ``{"np": "numpy"}``;
    ``from numpy import random as nr`` → ``{"nr": "numpy.random"}``;
    ``from time import time`` → ``{"time": "time.time"}``.  Relative
    imports (repo-internal) are ignored — the determinism rule only
    cares about stdlib/numpy entropy and clock sources.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    aliases[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


def _canonical_call(node: ast.Call, aliases: dict[str, str]) -> str | None:
    dotted = _dotted_name(node.func)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    if head in aliases:
        canonical = aliases[head]
        return f"{canonical}.{rest}" if rest else canonical
    return dotted


# ---------------------------------------------------------------------------
# REP001 — determinism


#: numpy.random attributes that are part of the *seeded* Generator API
#: (constructing a generator or seed material, not drawing from global
#: state).  Everything else on ``np.random`` is the legacy global-state
#: API and is forbidden in result-bearing code.
_GENERATOR_API = frozenset(
    {
        "default_rng",
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

_WALLCLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@register_rule
class DeterminismRule(Rule):
    """REP001: results must be reproducible from an explicit seed.

    Flags, in library/benchmark/example code (tests are exempt):

    * any legacy global-state numpy RNG call (``np.random.rand`` & co.);
    * ``np.random.default_rng()`` with no seed (draws OS entropy);
    * any stdlib ``random`` module call;
    * wall-clock reads: ``time.time``/``time_ns``,
      ``datetime.now``/``utcnow``/``today``, ``date.today``.

    ``time.perf_counter``/``monotonic`` stay allowed — timing a run is
    measurement, not simulation input.  Static approximation: calls are
    resolved through the file's imports, so an RNG smuggled through an
    intermediate variable is not seen.
    """

    code = "REP001"
    name = "determinism"
    description = (
        "no unseeded RNG or wall-clock reads in result-bearing code; "
        "seeded np.random.default_rng Generators only"
    )
    categories = ("src", "benchmarks", "examples")

    def check(self, context: FileContext) -> Iterable[Finding]:
        aliases = _import_aliases(context.tree)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            canonical = _canonical_call(node, aliases)
            if canonical is None:
                continue
            if canonical.startswith("numpy.random."):
                attribute = canonical.removeprefix("numpy.random.")
                if attribute == "default_rng":
                    if not node.args and not node.keywords:
                        yield context.finding(
                            self.code,
                            node,
                            "np.random.default_rng() without a seed draws OS entropy; "
                            "pass an explicit seed (or SeedSequence) so runs reproduce",
                        )
                elif "." not in attribute and attribute not in _GENERATOR_API:
                    yield context.finding(
                        self.code,
                        node,
                        f"np.random.{attribute} uses numpy's global RNG state; "
                        "use a seeded np.random.default_rng(seed) Generator instead",
                    )
            elif canonical == "random" or canonical.startswith("random."):
                yield context.finding(
                    self.code,
                    node,
                    f"stdlib random call {canonical} is process-global state; "
                    "use a seeded np.random.default_rng(seed) Generator instead",
                )
            elif canonical in _WALLCLOCK_CALLS:
                yield context.finding(
                    self.code,
                    node,
                    f"wall-clock read {canonical}() makes output depend on when it runs; "
                    "thread simulated time or an explicit timestamp argument through instead",
                )


# ---------------------------------------------------------------------------
# REP002 — picklability


#: Callables whose arguments cross (or may cross, depending on the
#: ``executor=`` knob) a process boundary: the shard-task dataclasses
#: and per-server factory holders the farm pickles, plus the fan-out
#: entry point itself.  Keyword arguments to these must never be
#: lambdas or local functions — exactly the PR 5 bug class.
_BOUNDARY_CALLEES = frozenset(
    {
        "ServerSpec",
        "ServerShardTask",
        "SharedServerShardTask",
        "PerIndexFactory",
        "ClusterRuntime",
    }
)

_EXECUTOR_FACTORIES = frozenset(
    {"ProcessExecutor", "ThreadExecutor", "SerialExecutor", "resolve_executor"}
)

_EXECUTORISH_NAME = re.compile(r"executor|pool", re.IGNORECASE)


def _is_executor_map(node: ast.Call) -> bool:
    """Whether *node* is ``<something executor-like>.map(...)``."""
    func = node.func
    if not (isinstance(func, ast.Attribute) and func.attr == "map"):
        return False
    receiver = func.value
    if isinstance(receiver, ast.Call):
        name = _dotted_name(receiver.func)
        return name is not None and name.split(".")[-1] in _EXECUTOR_FACTORIES
    if isinstance(receiver, ast.Name):
        return bool(_EXECUTORISH_NAME.search(receiver.id))
    if isinstance(receiver, ast.Attribute):
        return bool(_EXECUTORISH_NAME.search(receiver.attr))
    return False


@register_rule
class PicklabilityRule(Rule):
    """REP002: work that may cross a process boundary must pickle.

    The executor subsystem is pluggable — every call site must stay
    correct under ``executor="process"`` — so lambdas and local
    functions are banned wherever they would ride a shard task or a
    fan-out into a worker.  Flags:

    * a ``lambda`` (or a local name bound to a lambda / nested ``def``)
      passed to ``fan_out`` or to an ``<executor>.map(...)`` call
      (everywhere — the executor behind those calls is the caller's
      choice);
    * outside tests, the same passed to a shard-context constructor
      (``ServerSpec``, ``ClusterRuntime``, ``PerIndexFactory``, the
      shard-task classes) — tests may build serial-only farms with local
      factories, library/benchmark/example code must stay
      process-ready;
    * in library code, a ``lambda`` stored as a class attribute, as a
      dataclass field default, or assigned onto ``self`` — instances of
      such classes can never cross the boundary.

    Static approximation: callables smuggled through module-level
    variables or containers are not traced.  Tests that *intentionally*
    build unpicklable work for error-path coverage carry justified
    ``# repro: ignore[REP002]`` suppressions.
    """

    code = "REP002"
    name = "picklability"
    description = (
        "no lambdas/local functions in executor fan-outs or shard-task fields; "
        "process-executor work must pickle"
    )
    categories = None  # everywhere; field checks are src-only (see check)

    def check(self, context: FileContext) -> Iterable[Finding]:
        yield from _PicklabilityWalker(self, context).run()


class _PicklabilityWalker:
    def __init__(self, rule: PicklabilityRule, context: FileContext):
        self.rule = rule
        self.context = context
        self.findings: list[Finding] = []

    def run(self) -> Iterator[Finding]:
        self._walk_scope(self.context.tree.body, local_callables={}, class_name=None)
        return iter(self.findings)

    # -- scope walking ------------------------------------------------

    def _walk_scope(
        self,
        body: list[ast.stmt],
        local_callables: dict[str, str],
        class_name: str | None,
        in_function: bool = False,
    ) -> None:
        # First pass: record locally bound callables (nested defs and
        # name-bound lambdas) so passing them by name is caught too.
        bound = dict(local_callables)
        if in_function:
            for statement in body:
                if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    bound[statement.name] = "local function"
                elif isinstance(statement, ast.Assign) and isinstance(
                    statement.value, ast.Lambda
                ):
                    for target in statement.targets:
                        if isinstance(target, ast.Name):
                            bound[target.id] = "lambda"
        for statement in body:
            self._walk_statement(statement, bound, class_name, in_function)

    def _walk_statement(
        self,
        statement: ast.stmt,
        bound: dict[str, str],
        class_name: str | None,
        in_function: bool,
    ) -> None:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._walk_scope(
                statement.body, bound, class_name, in_function=True
            )
            return
        if isinstance(statement, ast.ClassDef):
            if self.context.category == "src":
                self._check_class_body(statement)
            self._walk_scope(statement.body, bound, statement.name)
            return
        if (
            self.context.category == "src"
            and class_name is not None
            and in_function
            and isinstance(statement, ast.Assign)
            and isinstance(statement.value, ast.Lambda)
        ):
            for target in statement.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    self.findings.append(
                        self.context.finding(
                            self.rule.code,
                            statement,
                            f"lambda assigned to self.{target.attr} makes every "
                            f"{class_name} instance unpicklable; use a module-level "
                            "function or a frozen factory dataclass",
                        )
                    )
        for node in ast.walk(statement):
            if isinstance(node, ast.Call):
                self._check_call(node, bound)

    def _check_class_body(self, node: ast.ClassDef) -> None:
        for statement in node.body:
            value: ast.expr | None = None
            target_name = ""
            if isinstance(statement, ast.Assign) and isinstance(
                statement.targets[0], ast.Name
            ):
                value = statement.value
                target_name = statement.targets[0].id
            elif isinstance(statement, ast.AnnAssign) and isinstance(
                statement.target, ast.Name
            ):
                value = statement.value
                target_name = statement.target.id
            if isinstance(value, ast.Lambda):
                self.findings.append(
                    self.context.finding(
                        self.rule.code,
                        value,
                        f"lambda as default for field {node.name}.{target_name} is "
                        "stored on instances and cannot pickle; use a module-level "
                        "function or a frozen factory dataclass",
                    )
                )

    # -- boundary calls -----------------------------------------------

    def _check_call(self, node: ast.Call, bound: dict[str, str]) -> None:
        callee = _dotted_name(node.func)
        last = callee.split(".")[-1] if callee else None
        # Shard-context constructors only bind outside tests: tests may
        # build serial-only farms with local factories (the executor
        # parity suite pins the process path with module-level ones).
        constructor_boundary = (
            last in _BOUNDARY_CALLEES and self.context.category != "tests"
        )
        if last == "fan_out":
            boundary = "fan_out"
        elif constructor_boundary:
            boundary = last or ""
        elif _is_executor_map(node):
            boundary = "executor.map"
        else:
            return
        arguments: list[tuple[str, ast.expr]] = [
            (f"argument {index}", value) for index, value in enumerate(node.args)
        ]
        arguments.extend(
            (f"{keyword.arg}=", keyword.value)
            for keyword in node.keywords
            if keyword.arg is not None
        )
        for label, value in arguments:
            if isinstance(value, ast.Lambda):
                self.findings.append(
                    self.context.finding(
                        self.rule.code,
                        value,
                        f"lambda passed as {label} to {boundary} cannot cross a "
                        "process boundary; use a module-level function or a frozen "
                        "factory dataclass",
                    )
                )
            elif isinstance(value, ast.Name) and value.id in bound:
                self.findings.append(
                    self.context.finding(
                        self.rule.code,
                        value,
                        f"{bound[value.id]} {value.id!r} passed as {label} to "
                        f"{boundary} cannot cross a process boundary; move it to "
                        "module level (or make it a frozen factory dataclass)",
                    )
                )


# ---------------------------------------------------------------------------
# REP004 — float equality


#: Identifier fragments that mark an expression as a *simulated
#: quantity* — values produced by the kernel/power pipeline, where two
#: mathematically equal results need not be bit-equal.
_QUANTITY_RE = re.compile(
    r"(^|_)(energy|power|watts?|joules?|latency|slack|utilization|percentile|qos)(_|$)"
    r"|response_time",
    re.IGNORECASE,
)


def _unwrap_sign(node: ast.expr) -> ast.expr:
    while isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return node


def _is_safe_float(value: float) -> bool:
    """Exact binary fractions in quarter steps (0.0, 0.25, 1.5, ...).

    These are bit-exact under IEEE-754 round-tripping, so sentinel
    checks like ``beta == 0.0`` stay legal; ``x == 0.35`` does not.
    """
    quadrupled = value * 4.0
    return quadrupled == int(quadrupled)


def _terminal_identifier(node: ast.expr) -> str | None:
    node = _unwrap_sign(node)
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):
        return _terminal_identifier(node.value)
    if isinstance(node, ast.Call):
        return _terminal_identifier(node.func)
    return None


@register_rule
class FloatEqualityRule(Rule):
    """REP004: no ``==``/``!=`` on float simulation quantities.

    Two mathematically equal floating-point results need not be
    bit-equal unless an oracle-parity contract *makes* them so; outside
    those pinned paths, equality on simulated quantities is a latent
    flake.  Flags (tests are exempt — parity suites assert bit-identity
    on purpose):

    * comparison against a float literal that is not an exact binary
      fraction in quarter steps (``x == 0.35``, ``u != 0.999``) — such
      a literal can only match if both sides computed it identically;
    * comparison between two non-literal expressions when either side's
      name marks it a simulated quantity (energy/power/latency/...).

    Use ``np.isclose``/``math.isclose`` with an explicit tolerance, or
    — where bit-identity genuinely holds by contract — suppress with
    the justification naming that contract.
    """

    code = "REP004"
    name = "float-equality"
    description = (
        "no ==/!= on float simulation quantities; use np.isclose with a stated "
        "tolerance or an explicit bit-identity contract"
    )
    categories = ("src", "benchmarks", "examples")

    def check(self, context: FileContext) -> Iterable[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left = _unwrap_sign(operands[index])
                right = _unwrap_sign(operands[index + 1])
                yield from self._check_pair(context, node, left, right)

    def _check_pair(
        self,
        context: FileContext,
        node: ast.Compare,
        left: ast.expr,
        right: ast.expr,
    ) -> Iterable[Finding]:
        sides = (left, right)
        for side in sides:
            if (
                isinstance(side, ast.Constant)
                and isinstance(side.value, float)
                and not _is_safe_float(side.value)
            ):
                yield context.finding(
                    self.code,
                    node,
                    f"equality against float literal {side.value!r} only holds if "
                    "both sides computed it bit-identically; use np.isclose with an "
                    "explicit tolerance",
                )
                return
        if any(isinstance(side, ast.Constant) for side in sides):
            return  # safe sentinel literal (0.0, 1.0, ...) — exact by construction
        for side in sides:
            identifier = _terminal_identifier(side)
            if identifier is not None and _QUANTITY_RE.search(identifier):
                yield context.finding(
                    self.code,
                    node,
                    f"==/!= on simulated quantity {identifier!r}; use np.isclose with "
                    "a stated tolerance, or suppress citing the bit-identity contract "
                    "that makes exact equality sound",
                )
                return


# ---------------------------------------------------------------------------
# REP005 — fan-out signature conformance


@register_rule
class FanOutConformanceRule(Rule):
    """REP005: public fan-out entry points accept and forward ``executor=``.

    The executor subsystem only stays pluggable if every public function
    that fans work out lets the caller pick the pool.  For each public
    (non-underscore) module-level function or method in library code
    whose body (including nested helpers) calls ``fan_out``, the
    function must take an ``executor`` parameter and every ``fan_out``
    call under it must forward it (keyword ``executor=...`` or the bare
    name positionally).
    """

    code = "REP005"
    name = "fan-out-conformance"
    description = "public fan-out entry points must accept and forward executor="
    categories = ("src",)

    def check(self, context: FileContext) -> Iterable[Finding]:
        for function in self._public_functions(context.tree):
            calls = [
                node
                for node in ast.walk(function)
                if isinstance(node, ast.Call)
                and (_dotted_name(node.func) or "").split(".")[-1] == "fan_out"
            ]
            if not calls:
                continue
            parameters = _parameter_names(function)
            if "executor" not in parameters:
                yield context.finding(
                    self.code,
                    function,
                    f"public fan-out entry point {function.name}() does not accept "
                    "executor=; every fan-out site must let the caller pick the pool",
                )
                continue
            for call in calls:
                if not _forwards_executor(call):
                    yield context.finding(
                        self.code,
                        call,
                        f"{function.name}() accepts executor= but this fan_out call "
                        "does not forward it",
                    )

    @staticmethod
    def _public_functions(tree: ast.Module) -> Iterator[ast.FunctionDef]:
        for node in tree.body:
            if isinstance(node, ast.FunctionDef) and not node.name.startswith("_"):
                yield node
            elif isinstance(node, ast.ClassDef):
                for member in node.body:
                    if isinstance(member, ast.FunctionDef) and not member.name.startswith("_"):
                        yield member


def _parameter_names(function: ast.FunctionDef) -> set[str]:
    arguments = function.args
    names = {
        arg.arg
        for arg in (
            *arguments.posonlyargs,
            *arguments.args,
            *arguments.kwonlyargs,
        )
    }
    if arguments.vararg is not None:
        names.add(arguments.vararg.arg)
    if arguments.kwarg is not None:
        names.add(arguments.kwarg.arg)
    return names


def _forwards_executor(call: ast.Call) -> bool:
    for keyword in call.keywords:
        if keyword.arg == "executor" or keyword.arg is None:  # **kwargs forwards too
            return True
    return any(
        isinstance(argument, ast.Name) and argument.id == "executor"
        for argument in call.args
    )


# ---------------------------------------------------------------------------
# REP006 — hygiene


_MUTABLE_FACTORIES = frozenset({"list", "dict", "set"})


@register_rule
class HygieneRule(Rule):
    """REP006: mutable defaults and silent exception handling.

    Beyond ruff's E/F gate: flags mutable default argument values
    (``def f(x=[])`` and friends — shared across calls), bare
    ``except:`` (catches ``KeyboardInterrupt``/``SystemExit``), and
    broad ``except``/``except Exception`` whose body is only ``pass``
    (errors vanish without a trace).
    """

    code = "REP006"
    name = "hygiene"
    description = "no mutable default arguments, bare excepts, or silently swallowed exceptions"
    categories = None

    def check(self, context: FileContext) -> Iterable[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                defaults = [*node.args.defaults, *node.args.kw_defaults]
                for default in defaults:
                    if default is None:
                        continue
                    if self._is_mutable_literal(default):
                        yield context.finding(
                            self.code,
                            default,
                            "mutable default argument is shared across calls; "
                            "default to None (or a frozen value) and build inside",
                        )
            elif isinstance(node, ast.ExceptHandler):
                if node.type is None:
                    yield context.finding(
                        self.code,
                        node,
                        "bare except catches KeyboardInterrupt/SystemExit too; "
                        "name the exception types",
                    )
                elif self._is_broad(node.type) and _only_passes(node.body):
                    yield context.finding(
                        self.code,
                        node,
                        "broad except whose body is only `pass` swallows errors "
                        "silently; handle, log or narrow it",
                    )

    @staticmethod
    def _is_mutable_literal(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _MUTABLE_FACTORIES
        )

    @staticmethod
    def _is_broad(node: ast.expr) -> bool:
        name = _dotted_name(node)
        return name in {"Exception", "BaseException"}


def _only_passes(body: list[ast.stmt]) -> bool:
    return all(isinstance(statement, ast.Pass) for statement in body)
