"""SleepScale core: QoS constraints, the policy manager, strategies and the runtime."""

from repro.core.analytic_manager import (
    AnalyticPolicyManager,
    AnalyticSleepScaleStrategy,
    analytic_sleepscale_strategy,
)
from repro.core.epoch import EpochRecord, RuntimeResult, epochs_to_rows
from repro.core.policy_manager import PolicyEvaluation, PolicyManager, PolicySelection
from repro.core.qos import (
    MeanResponseTimeConstraint,
    PercentileResponseTimeConstraint,
    QosConstraint,
    baseline_mean_response_budget,
    baseline_normalized_mean_budget,
    baseline_percentile_deadline,
    mean_qos_from_baseline,
    percentile_qos_from_baseline,
)
from repro.core.runtime import RuntimeConfig, RuntimeSession, SleepScaleRuntime
from repro.core.search import (
    SEARCH_FRONTIER,
    SEARCH_FULL,
    CharacterizationCache,
    FrontierSearch,
    PolicySearchEngine,
    SearchStats,
)
from repro.core.strategies import (
    EpochContext,
    FixedPolicyStrategy,
    PolicySearchStrategy,
    PowerManagementStrategy,
    RaceToHaltStrategy,
    dvfs_only_strategy,
    figure9_strategies,
    race_to_halt_c3,
    race_to_halt_c6,
    sleepscale_single_state_strategy,
    sleepscale_strategy,
)

__all__ = [
    "AnalyticPolicyManager",
    "AnalyticSleepScaleStrategy",
    "CharacterizationCache",
    "EpochContext",
    "EpochRecord",
    "FixedPolicyStrategy",
    "FrontierSearch",
    "MeanResponseTimeConstraint",
    "PercentileResponseTimeConstraint",
    "PolicyEvaluation",
    "PolicyManager",
    "PolicySearchEngine",
    "PolicySearchStrategy",
    "PolicySelection",
    "PowerManagementStrategy",
    "QosConstraint",
    "RaceToHaltStrategy",
    "RuntimeConfig",
    "SEARCH_FRONTIER",
    "SEARCH_FULL",
    "SearchStats",
    "RuntimeSession",
    "RuntimeResult",
    "SleepScaleRuntime",
    "analytic_sleepscale_strategy",
    "baseline_mean_response_budget",
    "baseline_normalized_mean_budget",
    "baseline_percentile_deadline",
    "dvfs_only_strategy",
    "epochs_to_rows",
    "figure9_strategies",
    "mean_qos_from_baseline",
    "percentile_qos_from_baseline",
    "race_to_halt_c3",
    "race_to_halt_c6",
    "sleepscale_single_state_strategy",
    "sleepscale_strategy",
]
