"""Tests for the analytic-vs-simulation validation harness."""

from __future__ import annotations

import pytest

from repro.analytic.validation import (
    ValidationPoint,
    ValidationReport,
    validate_against_simulation,
)
from repro.exceptions import ConfigurationError
from repro.power.states import C6_S0I


class TestValidationPoint:
    def test_relative_errors(self):
        point = ValidationPoint(
            utilization=0.3,
            frequency=0.8,
            sleep_state="C6S0(i)",
            simulated_mean_response_time=1.05,
            analytic_mean_response_time=1.0,
            simulated_average_power=95.0,
            analytic_average_power=100.0,
        )
        assert point.response_time_relative_error == pytest.approx(0.05)
        assert point.power_relative_error == pytest.approx(0.05)


class TestValidationReport:
    def test_aggregates(self):
        points = tuple(
            ValidationPoint(0.2, f, "s", 1.0 + e, 1.0, 100.0 * (1 + e), 100.0)
            for f, e in ((0.5, 0.01), (0.8, 0.03))
        )
        report = ValidationReport(points=points)
        assert report.max_response_time_error == pytest.approx(0.03)
        assert report.mean_power_error == pytest.approx(0.02)
        assert report.summary()["points"] == 2.0

    def test_empty_report_rejected(self):
        with pytest.raises(ConfigurationError):
            ValidationReport(points=())


class TestValidateAgainstSimulation:
    def test_simulation_matches_closed_form(self, dns_ideal, xeon):
        report = validate_against_simulation(
            dns_ideal,
            xeon.immediate_sleep_sequence(C6_S0I, 1.0),
            xeon,
            utilizations=[0.2, 0.4],
            frequencies=[0.6, 1.0],
            num_jobs=30_000,
            seed=1,
        )
        assert len(report.points) == 4
        assert report.max_response_time_error < 0.08
        assert report.max_power_error < 0.05

    def test_unstable_points_are_skipped(self, dns_ideal, xeon):
        report = validate_against_simulation(
            dns_ideal,
            xeon.immediate_sleep_sequence(C6_S0I, 1.0),
            xeon,
            utilizations=[0.5],
            frequencies=[0.4, 0.8],
            num_jobs=5_000,
            seed=2,
        )
        assert len(report.points) == 1
        assert report.points[0].frequency == pytest.approx(0.8)
