"""Figure 2 — the best low-power state depends on the job size.

At high utilisation the server rarely idles, so most savings come from DVFS;
but the *choice* of low-power state still matters and is driven by the job
size relative to the wake-up latencies:

* DNS-like jobs (194 ms) dwarf the C6S0(i) wake-up (1 ms), so C6S0(i)
  dominates;
* Google-like jobs (4.2 ms) are hurt by a 1 ms wake-up, so the cheaper-to-
  wake C3S0(i) (100 µs) becomes optimal;
* the very aggressive C6S3 (1 s wake-up) is a poor choice for either.
"""

from __future__ import annotations

from repro.campaigns.spec import CampaignSpec
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.power.platform import xeon_power_model
from repro.power.states import C3_S0I, C6_S0I, C6_S3
from repro.simulation.sweep import sweep_states
from repro.workloads.spec import workload_by_name

#: Candidate states compared at high utilisation.
FIGURE2_STATES = (C3_S0I, C6_S0I, C6_S3)

#: Optimal states the paper reports for each workload.
EXPECTED_OPTIMAL_STATE = {"dns": C6_S0I.name, "google": C3_S0I.name}


def run(
    config: ExperimentConfig | None = None,
    utilization: float = 0.7,
    workloads: tuple[str, ...] = ("dns", "google"),
) -> ExperimentResult:
    """Sweep each candidate state at high utilisation and find the best one."""
    config = config or ExperimentConfig()
    power_model = xeon_power_model()

    rows: list[dict[str, object]] = []
    best_states: dict[str, str] = {}
    for workload_name in workloads:
        spec = workload_by_name(workload_name, empirical=False)
        sleeps = {state.name: state for state in FIGURE2_STATES}
        curves = sweep_states(
            spec,
            sleeps,
            power_model,
            utilization=utilization,
            num_jobs=config.sweep_num_jobs,
            seed=config.seed,
            frequency_step=config.sweep_frequency_step,
        )
        per_state_minimum: dict[str, float] = {}
        for state_name, curve in curves.items():
            minimum = curve.minimum_power_point()
            per_state_minimum[state_name] = minimum.average_power
            for point in curve:
                rows.append(
                    {
                        "workload": workload_name,
                        "state": state_name,
                        "frequency": point.frequency,
                        "normalized_mean_response_time": point.normalized_mean_response_time,
                        "average_power_w": point.average_power,
                    }
                )
        best_states[workload_name] = min(per_state_minimum, key=per_state_minimum.get)

    notes = (
        "At high utilisation the optimal state should be C6S0(i) for the "
        "DNS-like workload and C3S0(i) for the Google-like workload; C6S3 "
        "should never win.",
    )
    return ExperimentResult(
        name="figure2",
        description=(
            "Optimal low-power state at high utilisation "
            f"(rho={utilization}) depends on job size"
        ),
        rows=tuple(rows),
        metadata={
            "utilization": utilization,
            "best_states": best_states,
            "expected_best_states": dict(EXPECTED_OPTIMAL_STATE),
        },
        notes=notes,
    )


#: One cell per workload (independent sweeps, same reseeding as Figure 1).
CAMPAIGN = CampaignSpec(
    name="figure2",
    kind="experiment",
    target="figure2",
    description="Figure 2 high-utilisation state comparison, one cell per workload",
    grid={"workloads": (("dns",), ("google",))},
)
