"""Trace storage backends must be result-invisible (and leak-free).

The PR 6 analogue of the executor contract: wherever the trace's arrays
live — in-process memory, shared-memory segments, or a memory-mapped file —
a farm produces **bit-identical** ``FarmResult``s.  This suite pins that
across every registered scenario (serial/memory oracle vs zero-copy process
sharding over shm and mmap, and the serial mmap-spill path), proves shared
segments are released on every exit path (normal, pickling failure, worker
crash), and runs a memory-mapped trace larger than a configured memory cap
through a chunked farm in bounded memory.
"""

from __future__ import annotations

import glob
import os
import tracemalloc

import numpy as np
import pytest

from repro.cluster.dispatch import RoundRobinDispatcher
from repro.cluster.farm import ServerFarm, ServerSpec
from repro.core.runtime import RuntimeConfig
from repro.core.strategies import race_to_halt_c3
from repro.exceptions import ExecutorError
from repro.power.platform import xeon_power_model
from repro.prediction.naive import NaivePreviousPredictor
from repro.scenarios import available_scenarios, get_scenario
from repro.workloads.jobs import JobTrace
from repro.workloads.storage import SHM_PREFIX, TraceBuffer

from tests.cluster.test_executor_parity import (
    _tiny_overrides,
    assert_farm_results_identical,
)


def shm_segments() -> set[str]:
    return set(glob.glob(f"/dev/shm/{SHM_PREFIX}*"))


@pytest.fixture(autouse=True)
def no_leaked_segments():
    before = shm_segments()
    yield
    leaked = shm_segments() - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


#: (executor, trace_backend) pairs compared against the serial/memory oracle.
#: The process runs exercise the zero-copy descriptor sharding; the serial
#: mmap run exercises the spill-to-file path without an arena.
BACKEND_MATRIX = (
    ("process", "shm"),
    ("process", "mmap"),
    ("serial", "mmap"),
)


class TestEveryScenarioBackendParity:
    """The tentpole's equivalence claim, across all registered scenarios."""

    @pytest.fixture(params=sorted(available_scenarios()))
    def name(self, request):
        return request.param

    def test_backends_match_the_memory_oracle(self, name):
        overrides = _tiny_overrides(name)
        oracle = get_scenario(name).build(
            seed=9, executor="serial", **overrides
        ).run()
        for executor, backend in BACKEND_MATRIX:
            built = get_scenario(name).build(
                seed=9, executor=executor, trace_backend=backend, **overrides
            )
            built.farm.max_workers = 2 if executor == "process" else None
            assert_farm_results_identical(oracle, built.run())


# ---------------------------------------------------------------------------
# Cleanup on the unhappy paths
# ---------------------------------------------------------------------------


def _fresh_strategy():
    return race_to_halt_c3(xeon_power_model())


def _fresh_predictor():
    return NaivePreviousPredictor()


def _crashing_strategy():
    # Hard worker death (no exception, no cleanup handlers in the worker):
    # the pool reports a BrokenProcessPool and the parent's arena context
    # must still unlink every segment.
    os._exit(17)


def _small_farm(strategy_factory, *, trace_backend: str = "shm") -> ServerFarm:
    from repro.workloads.spec import dns_workload

    servers = tuple(
        ServerSpec(
            name=f"server-{index}",
            power_model=xeon_power_model(),
            strategy_factory=strategy_factory,
            predictor_factory=_fresh_predictor,
            config=RuntimeConfig(epoch_minutes=1.0, rho_b=0.8),
        )
        for index in range(2)
    )
    return ServerFarm(
        servers=servers,
        spec=dns_workload(),
        dispatcher=RoundRobinDispatcher(),
        executor="process",
        max_workers=2,
        trace_backend=trace_backend,
    )


def _small_jobs() -> JobTrace:
    from repro.workloads.generator import generate_jobs
    from repro.workloads.spec import dns_workload

    return generate_jobs(dns_workload(), num_jobs=400, utilization=0.4, seed=3)


class TestSegmentCleanup:
    def test_no_segments_survive_a_normal_run(self):
        before = shm_segments()
        result = _small_farm(_fresh_strategy).run(_small_jobs())
        assert result.num_jobs == 400
        assert shm_segments() == before

    def test_no_segments_survive_an_executor_error(self):
        # A lambda factory cannot be pickled into the shard task: the
        # executor raises ExecutorError after the arena published the trace,
        # and the arena's __exit__ must still unlink everything.
        before = shm_segments()
        farm = _small_farm(lambda: _fresh_strategy())
        with pytest.raises(ExecutorError, match="pickl"):
            farm.run(_small_jobs())
        assert shm_segments() == before

    def test_no_segments_survive_a_worker_crash(self):
        from concurrent.futures.process import BrokenProcessPool

        before = shm_segments()
        farm = _small_farm(_crashing_strategy)
        with pytest.raises(BrokenProcessPool):
            farm.run(_small_jobs())
        assert shm_segments() == before


# ---------------------------------------------------------------------------
# Out-of-core: an mmap trace larger than the configured memory cap
# ---------------------------------------------------------------------------


class TestOutOfCoreMmapRun:
    def test_chunked_run_stays_under_the_memory_cap(self, tmp_path):
        # A trace bigger than the memory cap the run must respect: the cap
        # is deliberately smaller than the trace, so completing the run
        # proves the memory-mapped arrays never materialise — only the
        # chunks in flight and the O(n) result arrays are resident.
        num_jobs = 1_200_000
        path = tmp_path / "big.npy"
        arrivals = np.arange(num_jobs, dtype=np.float64) * 0.001
        demands = np.full(num_jobs, 0.0004)
        TraceBuffer.write_file(path, arrivals, demands)
        trace_bytes = 2 * 8 * num_jobs
        memory_cap = int(0.75 * trace_bytes)
        del arrivals, demands

        farm = _out_of_core_farm()
        tracemalloc.start()
        try:
            jobs = JobTrace.from_file(path, mmap=True, validate=False)
            result = farm.run(jobs, chunk_jobs=16384)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert result.num_jobs == num_jobs
        assert memory_cap < trace_bytes  # the cap really is out-of-core
        assert peak < memory_cap, (
            f"peak traced memory {peak / 1e6:.1f} MB exceeded the "
            f"{memory_cap / 1e6:.1f} MB cap for a {trace_bytes / 1e6:.1f} MB trace"
        )

    def test_mmap_backend_spills_and_matches_memory(self):
        # The ServerFarm-level knob: an in-memory trace run under the mmap
        # backend spills to a temporary file, and the spilled run is
        # bit-identical to the in-memory one.
        jobs = _small_jobs()
        import dataclasses

        farm = _small_farm(_fresh_strategy, trace_backend="memory")
        serial = dataclasses.replace(farm, executor="serial", max_workers=None)
        oracle = serial.run(jobs)
        spilled = dataclasses.replace(serial, trace_backend="mmap").run(jobs)
        assert_farm_results_identical(oracle, spilled)


def _out_of_core_farm() -> ServerFarm:
    from repro.workloads.spec import dns_workload

    servers = tuple(
        ServerSpec(
            name=f"server-{index}",
            power_model=xeon_power_model(),
            strategy_factory=_fresh_strategy,
            predictor_factory=_fresh_predictor,
            # Epochs much shorter than the trace span: a streaming session
            # buffers fed jobs only until the next epoch boundary, so short
            # epochs keep the per-server buffers small (a single epoch
            # spanning the whole trace would re-materialise it).
            config=RuntimeConfig(epoch_minutes=1.0, rho_b=0.8),
        )
        for index in range(8)
    )
    return ServerFarm(
        servers=servers,
        spec=dns_workload(),
        dispatcher=RoundRobinDispatcher(),
        executor="serial",
    )
