"""Benchmark reproducing Figure 8: predictors and policy-update intervals."""

from __future__ import annotations

import numpy as np
import pytest

from conftest import run_once
from repro.experiments import figure8


@pytest.mark.benchmark(group="runtime-figures")
def test_bench_figure8_predictors_and_intervals(
    benchmark, experiment_config, record_result
):
    result = run_once(benchmark, figure8.run, experiment_config)
    record_result(result)

    intervals = sorted(result.metadata["update_intervals"])
    predictors = result.unique("predictor")
    budget = result.metadata["budget"]

    def response(predictor, interval):
        return figure8.response_time(result, predictor, interval)

    # The offline (genie) predictor gives the lowest response time for every
    # update interval.
    for interval in intervals:
        offline = response("Offline", interval)
        for predictor in predictors:
            assert offline <= response(predictor, interval) * 1.05

    # Updating the policy more often does not hurt: for each predictor the
    # response time at the shortest interval is no worse than at the longest
    # (allowing a small tolerance for run-to-run noise).
    for predictor in predictors:
        fastest = response(predictor, intervals[0])
        slowest = response(predictor, intervals[-1])
        assert fastest <= slowest * 1.15

    # Without over-provisioning the causal predictors exceed the budget for
    # at least one configuration (the paper: "the average response time
    # exceeds the allowed budget in all cases when a utilization predictor
    # is used"), while the offline predictor stays within or near it.
    causal_rows = [row for row in result.rows if row["predictor"] != "Offline"]
    if experiment_config.fast:
        # The shrunk smoke configuration (short trace, T >= 5 only, 2k-job
        # logs) stopped exceeding the budget once the stale-log truncation
        # bug was fixed — characterising the *recent* tail of the log
        # improves selections just enough to squeeze under it.  The paper's
        # claim is still pinned below at full size; the smoke run checks
        # the causal predictors at least press hard against the budget.
        assert any(
            row["normalized_mean_response_time"] > 0.9 * budget
            for row in causal_rows
        )
    else:
        assert any(
            row["normalized_mean_response_time"] > budget for row in causal_rows
        )
    offline_rows = [row for row in result.rows if row["predictor"] == "Offline"]
    assert all(
        row["normalized_mean_response_time"] <= budget * 1.3 for row in offline_rows
    )

    # Power stays in a physical range for every configuration.
    powers = np.array([row["average_power_w"] for row in result.rows])
    assert np.all(powers > 28.0)
    assert np.all(powers < 250.0)
