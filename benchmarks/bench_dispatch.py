"""Farm-scale dispatch benchmark: 1M jobs over 16 mixed Xeon/Atom servers.

Measures the dispatch-engine contract end to end:

* ``LeastLoadedDispatcher`` and ``PowerAwareDispatcher`` on the ``"heap"``
  engine vs. the retained per-job ``"loop"`` oracle, asserting
  **byte-identical assignments** and reporting the speedups across traffic
  regimes (the farm-scale regime — heavy aggregate traffic spread over 16
  servers — is the headline);
* a chunked (streaming) ``ServerFarm.run`` vs. the one-shot path on a
  reduced trace, asserting equivalence within ``rtol <= 1e-9``.

Run directly (sizes shrink for CI smoke)::

    PYTHONPATH=src python benchmarks/bench_dispatch.py \
        --jobs 1000000 --farm-jobs 200000 --output BENCH_pr3.json

Not a pytest module on purpose: the measurements need fixed large sizes and
a JSON artifact, not statistical repetition.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from datetime import date

import numpy as np

from repro.cluster.dispatch import (
    ENGINE_HEAP,
    ENGINE_LOOP,
    LeastLoadedDispatcher,
    PowerAwareDispatcher,
)
from repro.cluster.farm import ServerFarm, ServerSpec
from repro.core.runtime import RuntimeConfig
from repro.core.strategies import FixedPolicyStrategy
from repro.policies.policy import race_to_halt_policy
from repro.power.platform import atom_power_model, xeon_power_model
from repro.power.states import C6_S0I
from repro.prediction.naive import NaivePreviousPredictor
from repro.workloads.jobs import JobTrace
from repro.workloads.spec import google_workload

MEAN_SERVICE = 0.0042  # Google-like (Table 5) job size, seconds
NUM_XEON = 8
NUM_ATOM = 8
ATOM_CEILING = 0.7  # dispatch-visible DVFS ceiling for the Atom half


def synthetic_jobs(num_jobs: int, utilization: float, seed: int) -> JobTrace:
    """Poisson arrivals at *utilization* of one full-frequency server."""
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(MEAN_SERVICE / utilization, num_jobs)
    return JobTrace(np.cumsum(gaps), rng.exponential(MEAN_SERVICE, num_jobs))


def time_assign(dispatcher, jobs, num_servers, server_speeds):
    start = time.perf_counter()
    assignment = dispatcher.assign(jobs, num_servers, server_speeds=server_speeds)
    return time.perf_counter() - start, assignment


def bench_dispatchers(num_jobs: int, seed: int) -> dict:
    """Heap vs. loop on every (dispatcher, regime, speed model) case."""
    num_servers = NUM_XEON + NUM_ATOM
    het_speeds = [1.0] * NUM_XEON + [ATOM_CEILING] * NUM_ATOM
    idle_powers = [xeon_power_model().idle_power(1.0)] * NUM_XEON + [
        atom_power_model().idle_power(1.0)
    ] * NUM_ATOM
    cases = {
        # The farm-scale regime: aggregate traffic of ~0.9 of one server
        # spread over 16 servers (per-server load ~6%), homogeneous speeds.
        "least_loaded_farm_scale": (
            lambda engine: LeastLoadedDispatcher(engine),
            0.9,
            None,
        ),
        # Same regime, the mixed Xeon/Atom speed model (merge fast path is
        # homogeneous-only, so this shows the heap-tier floor).
        "least_loaded_heterogeneous": (
            lambda engine: LeastLoadedDispatcher(engine),
            0.9,
            het_speeds,
        ),
        # Aggregate load near half the farm's capacity.
        "least_loaded_heavy": (
            lambda engine: LeastLoadedDispatcher(engine),
            8.0,
            None,
        ),
        "power_aware_farm_scale": (
            lambda engine: PowerAwareDispatcher(idle_powers, engine=engine),
            0.9,
            het_speeds,
        ),
        "power_aware_light_packing": (
            lambda engine: PowerAwareDispatcher(idle_powers, engine=engine),
            0.1,
            het_speeds,
        ),
    }
    results = {}
    for name, (factory, utilization, speeds) in cases.items():
        jobs = synthetic_jobs(num_jobs, utilization, seed)
        heap_seconds, heap_assignment = time_assign(
            factory(ENGINE_HEAP), jobs, num_servers, speeds
        )
        loop_seconds, loop_assignment = time_assign(
            factory(ENGINE_LOOP), jobs, num_servers, speeds
        )
        identical = bool(np.array_equal(heap_assignment, loop_assignment))
        if not identical:
            raise SystemExit(
                f"FATAL: {name}: heap and loop assignments differ "
                "(the dispatch-engine contract is broken)"
            )
        results[name] = {
            "jobs": num_jobs,
            "servers": num_servers,
            "offered_load_of_one_server": utilization,
            "speed_model": "heterogeneous" if speeds else "homogeneous",
            "heap_ms": round(heap_seconds * 1e3, 1),
            "loop_ms": round(loop_seconds * 1e3, 1),
            "speedup": round(loop_seconds / heap_seconds, 1),
            "byte_identical": identical,
        }
        print(
            f"{name:32s} heap {heap_seconds*1e3:8.1f} ms   "
            f"loop {loop_seconds*1e3:8.1f} ms   "
            f"speedup {loop_seconds/heap_seconds:5.1f}x   identical={identical}"
        )
    return results


@dataclasses.dataclass(frozen=True)
class _FixedPolicyStrategyFactory:
    """Picklable factory so the benchmark farm stays process-ready (REP002)."""

    power_model: object

    def __call__(self) -> FixedPolicyStrategy:
        return FixedPolicyStrategy(race_to_halt_policy(self.power_model, C6_S0I))


@dataclasses.dataclass(frozen=True)
class _NaivePredictorFactory:
    def __call__(self) -> NaivePreviousPredictor:
        return NaivePreviousPredictor()


def _fixed_policy_server(name, power_model, max_frequency=1.0) -> ServerSpec:
    return ServerSpec(
        name=name,
        power_model=power_model,
        strategy_factory=_FixedPolicyStrategyFactory(power_model),
        predictor_factory=_NaivePredictorFactory(),
        config=RuntimeConfig(epoch_minutes=5.0, rho_b=0.8, over_provisioning=0.0),
        max_frequency=max_frequency,
    )


def bench_chunked_farm(num_jobs: int, chunk_jobs: int, seed: int) -> dict:
    """Streaming vs. one-shot farm run on the 16-server mixed fleet."""
    xeon, atom = xeon_power_model(), atom_power_model()
    servers = tuple(
        [_fixed_policy_server(f"xeon-{i}", xeon) for i in range(NUM_XEON)]
        + [
            _fixed_policy_server(f"atom-{i}", atom, max_frequency=ATOM_CEILING)
            for i in range(NUM_ATOM)
        ]
    )
    spec = google_workload()
    jobs = synthetic_jobs(num_jobs, 0.9, seed)
    dispatcher = PowerAwareDispatcher.from_power_models(
        [server.power_model for server in servers]
    )

    def build():
        return ServerFarm(servers=servers, spec=spec, dispatcher=dispatcher)

    start = time.perf_counter()
    one_shot = build().run(jobs)
    one_shot_seconds = time.perf_counter() - start
    start = time.perf_counter()
    chunked = build().run(jobs, chunk_jobs=chunk_jobs)
    chunked_seconds = time.perf_counter() - start

    energy_error = abs(chunked.total_energy - one_shot.total_energy) / max(
        one_shot.total_energy, 1e-300
    )
    latency_error = abs(
        chunked.mean_response_time - one_shot.mean_response_time
    ) / max(one_shot.mean_response_time, 1e-300)
    if energy_error > 1e-9 or latency_error > 1e-9:
        raise SystemExit(
            "FATAL: chunked farm run diverged from one-shot "
            f"(energy rel err {energy_error:.3e}, latency rel err {latency_error:.3e})"
        )
    print(
        f"{'farm_run (16 servers)':32s} one-shot {one_shot_seconds:6.2f} s   "
        f"chunked {chunked_seconds:6.2f} s   "
        f"energy rel err {energy_error:.1e}   latency rel err {latency_error:.1e}"
    )
    return {
        "jobs": num_jobs,
        "servers": len(servers),
        "chunk_jobs": chunk_jobs,
        "one_shot_s": round(one_shot_seconds, 2),
        "chunked_s": round(chunked_seconds, 2),
        "energy_rel_error": energy_error,
        "latency_rel_error": latency_error,
        "rtol_target": 1e-9,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=1_000_000)
    parser.add_argument("--farm-jobs", type=int, default=200_000)
    parser.add_argument("--chunk-jobs", type=int, default=32_768)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", type=str, default=None, metavar="FILE")
    arguments = parser.parse_args(argv)

    dispatch_results = bench_dispatchers(arguments.jobs, arguments.seed)
    farm_results = bench_chunked_farm(
        arguments.farm_jobs, arguments.chunk_jobs, arguments.seed
    )
    headline = dispatch_results["least_loaded_farm_scale"]["speedup"]
    report = {
        "pr": 3,
        "title": (
            "Farm-scale dispatch engine: speed-aware heap dispatchers + "
            "streaming farm runs"
        ),
        # repro: ignore[REP001] -- report metadata stamp, not simulation input.
        "date": date.today().isoformat(),
        "benchmark_file": "benchmarks/bench_dispatch.py",
        "workload": (
            "synthetic Google-like jobs (mean 4.2 ms), Poisson arrivals, "
            "16 servers (8 Xeon + 8 Atom at 0.7 dispatch ceiling)"
        ),
        "dispatch": dispatch_results,
        "chunked_farm_run": farm_results,
        "acceptance": {
            "target_speedup_1M_jobs_16_servers": 10.0,
            "measured_headline_speedup": headline,
            "byte_identical_assignments": True,
            "chunked_rtol": 1e-9,
            "equivalence_suite": "tests/cluster/test_dispatch_engine.py, "
            "tests/cluster/test_farm_streaming.py",
        },
    }
    if arguments.output:
        with open(arguments.output, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"wrote {arguments.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
