"""Benchmarks reproducing Table 2 (power model) and Table 5 (workloads)."""

from __future__ import annotations

import pytest

from conftest import run_once
from repro.experiments import table2, table5


@pytest.mark.benchmark(group="tables")
def test_bench_table2_power_model(benchmark, experiment_config, record_result):
    """Table 2: component and platform power numbers match the paper exactly."""
    result = run_once(benchmark, table2.run, experiment_config)
    record_result(result)

    assert table2.platform_totals_match(result)
    totals = result.metadata["model_platform_totals"]
    assert totals["operating"] == pytest.approx(120.0)
    assert totals["idle"] == pytest.approx(60.5)
    assert totals["deeper_sleep"] == pytest.approx(13.1)
    assert result.metadata["peak_system_power_w"] == pytest.approx(250.0)

    # Table 4 companion: the representative wake-up latencies are ordered and
    # span microseconds (C1) to a second (C6S3).
    system_rows = {
        row["component"]: row for row in result.rows if "wake_up_latency_s" in row
    }
    latencies = [
        system_rows[f"system {name}"]["wake_up_latency_s"]
        for name in ("C0(i)S0(i)", "C1S0(i)", "C3S0(i)", "C6S0(i)", "C6S3")
    ]
    assert latencies == sorted(latencies)
    assert latencies[-1] == pytest.approx(1.0)


@pytest.mark.benchmark(group="tables")
def test_bench_table5_workload_statistics(benchmark, experiment_config, record_result):
    """Table 5: moment-matched workloads reproduce the published mean and Cv."""
    result = run_once(benchmark, table5.run, experiment_config)
    record_result(result)

    assert table5.max_relative_error(result) < 0.08
    rows = {row["workload"]: row for row in result.rows}
    assert rows["dns"]["service_mean_target_s"] == pytest.approx(0.194)
    assert rows["google"]["service_mean_target_s"] == pytest.approx(0.0042)
    assert rows["mail"]["service_cv_target"] == pytest.approx(3.6)
    # The heavy-tailed Mail service Cv must actually be realised by sampling.
    assert rows["mail"]["service_cv_sampled"] > 2.5
