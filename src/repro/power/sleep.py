"""Sleep-state policy primitives.

Section 3.2 of the paper characterises the *i*-th low-power state by the
three-tuple ``(P_i, tau_i, w_i)``:

* ``P_i`` — power consumed while resident in the state,
* ``tau_i`` — the delay after the queue empties before the server enters the
  state (measured from the instant the queue empties),
* ``w_i`` — the average wake-up latency back to the active state.

Each time the server becomes idle it walks through an ordered *sequence* of
such states (``tau_1 < tau_2 < ... < tau_n``); a job arrival interrupts the
walk and triggers a wake-up whose latency is the ``w_i`` of the state the
server currently occupies.  Deeper states consume less power but wake more
slowly, so a valid sequence has ``P_1 > P_2 > ... > P_n`` and
``w_1 < w_2 < ... < w_n``.

:class:`SleepStateSpec` is one such tuple (annotated with the
:class:`~repro.power.states.SystemState` it corresponds to, for reporting),
and :class:`SleepSequence` is an ordered, validated collection of them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Iterable, Iterator, Sequence

from repro.exceptions import ConfigurationError
from repro.power.states import SystemState


@dataclass(frozen=True)
class SleepStateSpec:
    """One low-power state in a sleep sequence: the paper's ``(P_i, tau_i, w_i)``.

    Parameters
    ----------
    state:
        The combined CPU/platform state this entry corresponds to (used for
        power lookup and reporting; e.g. ``C6S3``).
    power:
        ``P_i``, the power drawn while resident in the state, in watts.
    entry_delay:
        ``tau_i``, seconds of idleness (measured from the moment the queue
        empties) after which the server enters this state.
    wake_up_latency:
        ``w_i``, seconds required to return to the active state when a job
        arrives while the server is in this state.
    """

    state: SystemState
    power: float
    entry_delay: float
    wake_up_latency: float

    def __post_init__(self) -> None:
        if self.power < 0:
            raise ConfigurationError(
                f"sleep state {self.state.name} has negative power {self.power}"
            )
        if self.entry_delay < 0 or not math.isfinite(self.entry_delay):
            raise ConfigurationError(
                f"sleep state {self.state.name} has invalid entry delay "
                f"{self.entry_delay}"
            )
        if self.wake_up_latency < 0 or not math.isfinite(self.wake_up_latency):
            raise ConfigurationError(
                f"sleep state {self.state.name} has invalid wake-up latency "
                f"{self.wake_up_latency}"
            )
        if self.state.is_active:
            raise ConfigurationError(
                "the active state cannot be part of a sleep sequence"
            )

    @property
    def name(self) -> str:
        """The combined state name, e.g. ``"C6S3"``."""
        return self.state.name

    def with_entry_delay(self, entry_delay: float) -> "SleepStateSpec":
        """Return a copy of this spec with a different ``tau_i``."""
        return SleepStateSpec(
            state=self.state,
            power=self.power,
            entry_delay=entry_delay,
            wake_up_latency=self.wake_up_latency,
        )


class SleepSequence:
    """An ordered sequence of low-power states the server walks through.

    The sequence is validated on construction:

    * entry delays must be strictly increasing (``tau_1 < tau_2 < ...``),
    * wake-up latencies must be non-decreasing (deeper states wake slower).

    Powers are *usually* non-increasing with depth but this is not enforced:
    under the paper's own Table 2 model the halt state (``47 V^2``) can draw
    more than operating-idle (``75 V^2 f``) at low DVFS settings, and the
    sequence must still be representable there.

    The class also answers the two questions the simulator and the analytic
    model need: *which state is the server in after idling for t seconds*,
    and *how much energy does an idle period of length t cost* (excluding the
    wake-up, which the caller accounts at active power).
    """

    def __init__(self, states: Iterable[SleepStateSpec], name: str | None = None):
        self._states: tuple[SleepStateSpec, ...] = tuple(states)
        if not self._states:
            raise ConfigurationError("a sleep sequence needs at least one state")
        self._validate()
        self._name = name or "->".join(s.name for s in self._states)

    def _validate(self) -> None:
        for earlier, later in zip(self._states, self._states[1:], strict=False):
            if later.entry_delay <= earlier.entry_delay:
                raise ConfigurationError(
                    "sleep sequence entry delays must be strictly increasing: "
                    f"{earlier.name} has tau={earlier.entry_delay}, "
                    f"{later.name} has tau={later.entry_delay}"
                )
            if later.wake_up_latency < earlier.wake_up_latency:
                raise ConfigurationError(
                    "sleep sequence wake-up latencies must be non-decreasing: "
                    f"{earlier.name} wakes in {earlier.wake_up_latency}s but deeper "
                    f"{later.name} wakes in {later.wake_up_latency}s"
                )

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._states)

    def __iter__(self) -> Iterator[SleepStateSpec]:
        return iter(self._states)

    def __getitem__(self, index: int) -> SleepStateSpec:
        return self._states[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SleepSequence):
            return NotImplemented
        return self._states == other._states

    def __hash__(self) -> int:
        return hash(self._states)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SleepSequence({self._name})"

    # -- queries ------------------------------------------------------------

    @property
    def name(self) -> str:
        """Human-readable name, e.g. ``"C0(i)S0(i)->C6S3"``."""
        return self._name

    @property
    def states(self) -> Sequence[SleepStateSpec]:
        """The ordered state specs."""
        return self._states

    @property
    def first_entry_delay(self) -> float:
        """``tau_1``: how long the server stays active-idle before sleeping."""
        return self._states[0].entry_delay

    @property
    def deepest(self) -> SleepStateSpec:
        """The last (deepest) state of the sequence."""
        return self._states[-1]

    def state_after_idle(self, idle_time: float) -> SleepStateSpec | None:
        """The state occupied after the queue has been empty *idle_time* seconds.

        Returns ``None`` when the idle time is shorter than the first entry
        delay, i.e. the server is still in the active (operating idle at the
        current DVFS setting) state and no transition has happened yet.
        """
        if idle_time < 0:
            raise ConfigurationError(f"idle_time must be non-negative, got {idle_time}")
        current: SleepStateSpec | None = None
        for spec in self._states:
            if idle_time >= spec.entry_delay:
                current = spec
            else:
                break
        return current

    def wake_up_latency_after_idle(self, idle_time: float) -> float:
        """Wake-up latency incurred if a job arrives after *idle_time* of idleness."""
        state = self.state_after_idle(idle_time)
        return 0.0 if state is None else state.wake_up_latency

    def idle_energy(self, idle_time: float, pre_sleep_power: float) -> float:
        """Energy (joules) consumed over an idle period of *idle_time* seconds.

        The period starts when the queue empties.  Before ``tau_1`` the server
        draws *pre_sleep_power* (the power of the active-idle state at the
        current frequency); from ``tau_i`` to ``tau_{i+1}`` it draws ``P_i``;
        after ``tau_n`` it draws ``P_n``.  Wake-up energy is *not* included
        here — the simulator charges wake-up time at active power, matching
        the paper's conservative assumption.
        """
        if idle_time < 0:
            raise ConfigurationError(f"idle_time must be non-negative, got {idle_time}")
        energy = 0.0
        # Segment before the first transition.
        boundary = min(idle_time, self._states[0].entry_delay)
        energy += pre_sleep_power * boundary
        if idle_time <= self._states[0].entry_delay:
            return energy
        # Segments between consecutive transitions.
        for index, spec in enumerate(self._states):
            start = spec.entry_delay
            if index + 1 < len(self._states):
                end = self._states[index + 1].entry_delay
            else:
                end = math.inf
            if idle_time <= start:
                break
            segment = min(idle_time, end) - start
            energy += spec.power * segment
            if idle_time <= end:
                break
        return energy

    def with_entry_delays(self, delays: Sequence[float]) -> "SleepSequence":
        """Return a new sequence with the same states but different ``tau_i``."""
        if len(delays) != len(self._states):
            raise ConfigurationError(
                f"expected {len(self._states)} delays, got {len(delays)}"
            )
        return SleepSequence(
            (spec.with_entry_delay(delay) for spec, delay in zip(self._states, delays, strict=True)),
        )


def immediate_sequence(spec: SleepStateSpec) -> SleepSequence:
    """A single-state sequence entered immediately when the queue empties.

    This is the ``tau_1 = 0`` setting used throughout Section 4.2 of the
    paper ("whenever the server completes all jobs in its queue the server
    immediately enters a low-power state").
    """
    return SleepSequence([spec.with_entry_delay(0.0)])
