"""Tests for the whole-server power model (CPU + platform)."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.power.platform import ServerPowerModel, atom_power_model, xeon_power_model
from repro.power.states import (
    ACTIVE,
    C0I_S0I,
    C1_S0I,
    C3_S0I,
    C6_S0I,
    C6_S3,
    LOW_POWER_STATES,
    CpuState,
    PlatformState,
)


class TestXeonSystemPower:
    def test_peak_power_is_250_watts(self, xeon):
        assert xeon.peak_power() == pytest.approx(250.0)

    def test_active_power_has_cubic_cpu_term(self, xeon):
        # 130 * 0.5^3 + 120 platform active.
        assert xeon.active_power(0.5) == pytest.approx(130.0 * 0.125 + 120.0)

    def test_operating_idle_power_at_full_frequency(self, xeon):
        assert xeon.system_power(C0I_S0I, 1.0) == pytest.approx(75.0 + 60.5)

    def test_operating_idle_power_tracks_frequency(self, xeon):
        assert xeon.system_power(C0I_S0I, 0.5) == pytest.approx(75.0 * 0.125 + 60.5)

    def test_halt_power(self, xeon):
        assert xeon.system_power(C1_S0I, 1.0) == pytest.approx(47.0 + 60.5)

    def test_c3_power(self, xeon):
        assert xeon.system_power(C3_S0I, 1.0) == pytest.approx(22.0 + 60.5)

    def test_c6_power(self, xeon):
        assert xeon.system_power(C6_S0I, 1.0) == pytest.approx(15.0 + 60.5)

    def test_deepest_state_power(self, xeon):
        assert xeon.system_power(C6_S3, 1.0) == pytest.approx(15.0 + 13.1)

    def test_deeper_states_draw_less(self, xeon):
        powers = [xeon.system_power(state, 1.0) for state in LOW_POWER_STATES]
        assert powers == sorted(powers, reverse=True)

    def test_active_power_always_exceeds_idle(self, xeon):
        for frequency in (0.3, 0.6, 1.0):
            assert xeon.active_power(frequency) > xeon.idle_power(frequency)

    def test_platform_power_s3(self, xeon):
        assert xeon.platform_power(PlatformState.S3, CpuState.C6) == pytest.approx(13.1)

    def test_platform_power_idle_never_uses_deeper_sleep_column(self, xeon):
        # Even with the CPU in C6, an S0(i) platform keeps RAM etc. powered.
        assert xeon.platform_power(PlatformState.S0_IDLE, CpuState.C6) == pytest.approx(60.5)


class TestWakeUpLatencies:
    def test_defaults_match_paper(self, xeon):
        assert xeon.wake_up_latency(C6_S3) == pytest.approx(1.0)
        assert xeon.wake_up_latency(C6_S0I) == pytest.approx(1e-3)
        assert xeon.wake_up_latency(C0I_S0I) == 0.0

    def test_custom_latencies_override_defaults(self):
        model = xeon_power_model(wake_up_latencies={C6_S3: 5.0})
        assert model.wake_up_latency(C6_S3) == pytest.approx(5.0)
        # Unspecified states fall back to the paper defaults.
        assert model.wake_up_latency(C6_S0I) == pytest.approx(1e-3)

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            ServerPowerModel(
                inventory=xeon_power_model().inventory,
                wake_up_latencies={C6_S3: -1.0},
            )


class TestSleepSpecConstruction:
    def test_sleep_state_spec_fields(self, xeon):
        spec = xeon.sleep_state_spec(C6_S3, entry_delay=2.0)
        assert spec.power == pytest.approx(28.1)
        assert spec.entry_delay == 2.0
        assert spec.wake_up_latency == pytest.approx(1.0)

    def test_shallow_spec_power_depends_on_frequency(self, xeon):
        low = xeon.sleep_state_spec(C0I_S0I, frequency=0.4)
        high = xeon.sleep_state_spec(C0I_S0I, frequency=1.0)
        assert low.power < high.power

    def test_active_state_rejected(self, xeon):
        with pytest.raises(ConfigurationError):
            xeon.sleep_state_spec(ACTIVE)

    def test_immediate_sequence_has_zero_delay(self, xeon):
        sequence = xeon.immediate_sleep_sequence(C3_S0I)
        assert sequence.first_entry_delay == 0.0
        assert len(sequence) == 1

    def test_multi_state_sequence(self, xeon):
        sequence = xeon.sleep_sequence([C0I_S0I, C6_S3], [0.0, 30.0])
        assert len(sequence) == 2
        assert sequence.deepest.name == "C6S3"
        assert sequence[1].entry_delay == 30.0

    def test_sequence_length_mismatch_rejected(self, xeon):
        with pytest.raises(ConfigurationError):
            xeon.sleep_sequence([C0I_S0I, C6_S3], [0.0])

    def test_full_throttle_back_sequence_uses_all_states(self, xeon):
        sequence = xeon.full_throttle_back_sequence([0.0, 0.1, 0.2, 0.3, 0.4])
        assert len(sequence) == len(LOW_POWER_STATES)
        assert [s.name for s in sequence] == [s.name for s in LOW_POWER_STATES]

    def test_low_power_state_table_contains_all_states(self, xeon):
        table = xeon.low_power_state_table()
        assert set(table) == {state.name for state in LOW_POWER_STATES}
        assert table["C6S3"]["power_w"] == pytest.approx(28.1)


class TestAtomModel:
    def test_atom_peak_below_xeon(self, xeon, atom):
        assert atom.peak_power() < xeon.peak_power() / 3

    def test_atom_platform_dominates_cpu_dynamic_range(self, atom):
        dynamic_range = atom.active_power(1.0) - atom.active_power(0.3)
        idle_floor = atom.idle_power(0.3)
        assert dynamic_range < idle_floor

    def test_atom_name(self, atom):
        assert atom.name == "atom"
        assert atom_power_model().name == "atom"
