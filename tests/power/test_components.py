"""Tests for the per-component power models (Table 2)."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.power.components import (
    ComponentInventory,
    ComponentMode,
    ComponentPower,
    CpuPowerModel,
    atom_component_inventory,
    xeon_component_inventory,
)
from repro.power.states import CpuState


class TestComponentPower:
    def test_power_multiplies_by_count(self):
        ram = ComponentPower("RAM", 4.0, 2.0, 2.0, 2.0, 0.5, count=6)
        assert ram.power(ComponentMode.OPERATING) == pytest.approx(24.0)
        assert ram.power(ComponentMode.DEEPER_SLEEP) == pytest.approx(3.0)

    def test_rejects_negative_power(self):
        with pytest.raises(ConfigurationError):
            ComponentPower("bad", -1.0, 0.0, 0.0, 0.0, 0.0)

    def test_rejects_zero_count(self):
        with pytest.raises(ConfigurationError):
            ComponentPower("bad", 1.0, 1.0, 1.0, 1.0, 1.0, count=0)

    def test_per_unit_power_by_mode_has_all_modes(self):
        component = ComponentPower("X", 5.0, 4.0, 3.0, 2.0, 1.0)
        table = component.per_unit_power_by_mode()
        assert set(table) == set(ComponentMode)
        assert table[ComponentMode.SLEEP] == 3.0


class TestCpuPowerModel:
    def test_xeon_defaults_match_table2(self):
        cpu = CpuPowerModel()
        assert cpu.power(CpuState.C0_ACTIVE, 1.0) == pytest.approx(130.0)
        assert cpu.power(CpuState.C0_IDLE, 1.0) == pytest.approx(75.0)
        assert cpu.power(CpuState.C1, 1.0) == pytest.approx(47.0)
        assert cpu.power(CpuState.C3, 1.0) == pytest.approx(22.0)
        assert cpu.power(CpuState.C6, 1.0) == pytest.approx(15.0)

    def test_active_power_scales_cubically(self):
        cpu = CpuPowerModel()
        assert cpu.power(CpuState.C0_ACTIVE, 0.5) == pytest.approx(130.0 * 0.125)

    def test_idle_power_scales_cubically(self):
        cpu = CpuPowerModel()
        assert cpu.power(CpuState.C0_IDLE, 0.5) == pytest.approx(75.0 * 0.125)

    def test_halt_power_scales_quadratically(self):
        cpu = CpuPowerModel()
        assert cpu.power(CpuState.C1, 0.5) == pytest.approx(47.0 * 0.25)

    def test_deep_states_are_frequency_independent(self):
        cpu = CpuPowerModel()
        assert cpu.power(CpuState.C3, 0.2) == cpu.power(CpuState.C3, 1.0)
        assert cpu.power(CpuState.C6, 0.2) == cpu.power(CpuState.C6, 1.0)

    def test_zero_frequency_zeroes_dynamic_power(self):
        cpu = CpuPowerModel()
        assert cpu.power(CpuState.C0_ACTIVE, 0.0) == 0.0

    def test_rejects_out_of_range_frequency(self):
        cpu = CpuPowerModel()
        with pytest.raises(ConfigurationError):
            cpu.power(CpuState.C0_ACTIVE, 1.5)
        with pytest.raises(ConfigurationError):
            cpu.power(CpuState.C0_ACTIVE, -0.1)

    def test_rejects_negative_coefficients(self):
        with pytest.raises(ConfigurationError):
            CpuPowerModel(active_coefficient=-1.0)


class TestXeonInventory:
    @pytest.fixture(scope="class")
    def inventory(self) -> ComponentInventory:
        return xeon_component_inventory()

    def test_platform_totals_match_table2(self, inventory):
        assert inventory.platform_power(ComponentMode.OPERATING) == pytest.approx(120.0)
        assert inventory.platform_power(ComponentMode.IDLE) == pytest.approx(60.5)
        assert inventory.platform_power(ComponentMode.SLEEP) == pytest.approx(60.5)
        assert inventory.platform_power(ComponentMode.DEEP_SLEEP) == pytest.approx(60.5)
        assert inventory.platform_power(ComponentMode.DEEPER_SLEEP) == pytest.approx(13.1)

    def test_ram_total_matches_table2(self, inventory):
        ram = inventory.component("ram")
        assert ram.power(ComponentMode.OPERATING) == pytest.approx(23.1)
        assert ram.power(ComponentMode.DEEPER_SLEEP) == pytest.approx(3.0)

    def test_component_lookup_is_case_insensitive(self, inventory):
        assert inventory.component("PSU").name == "PSU"
        assert inventory.component("psu").name == "PSU"

    def test_unknown_component_raises(self, inventory):
        with pytest.raises(ConfigurationError):
            inventory.component("GPU")

    def test_table_includes_platform_total_row(self, inventory):
        table = inventory.table()
        assert "Platform total" in table
        assert table["Platform total"]["operating"] == pytest.approx(120.0)

    def test_six_component_categories(self, inventory):
        assert len(inventory.components) == 6


class TestAtomInventory:
    def test_atom_platform_dominates_cpu(self):
        inventory = atom_component_inventory()
        cpu_peak = inventory.cpu.power(CpuState.C0_ACTIVE, 1.0)
        platform_idle = inventory.platform_power(ComponentMode.IDLE)
        assert cpu_peak < platform_idle

    def test_atom_draws_less_than_xeon(self):
        atom = atom_component_inventory()
        xeon = xeon_component_inventory()
        for mode in ComponentMode:
            assert atom.platform_power(mode) < xeon.platform_power(mode)
