"""Unit tests for :mod:`repro.campaigns.spec`.

The spec layer is what makes campaigns resumable: deterministic cell
enumeration, content-addressed cell IDs, and a JSON round trip that
preserves both.  These tests pin the validation surface and the
canonicalisation rules (tuple-vs-list spelling must not change identity).
"""

from __future__ import annotations

import json
import math

import pytest

from repro.campaigns.spec import (
    CAMPAIGN_KINDS,
    SPEC_SCHEMA,
    CampaignCell,
    CampaignSpec,
    canonical_json,
    canonical_value,
    describe_spec,
    load_spec_file,
    split_scenario_params,
)
from repro.exceptions import CampaignError


def make_spec(**overrides):
    defaults = dict(
        name="unit",
        kind="experiment",
        target="figure1",
        seeds=(0, 1),
        grid={"alpha": (0.0, 0.5), "mode": ("a", "b", "c")},
        fixed={"extra": 7},
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


class TestValidation:
    def test_kinds_are_the_two_documented_ones(self):
        assert CAMPAIGN_KINDS == ("experiment", "scenario")

    def test_empty_name_rejected(self):
        with pytest.raises(CampaignError, match="non-empty name"):
            make_spec(name="")

    def test_unknown_kind_rejected(self):
        with pytest.raises(CampaignError, match="kind"):
            make_spec(kind="benchmark")

    def test_empty_target_rejected(self):
        with pytest.raises(CampaignError, match="target"):
            make_spec(target="")

    def test_no_seeds_rejected(self):
        with pytest.raises(CampaignError, match="no seeds"):
            make_spec(seeds=())

    def test_duplicate_seeds_rejected(self):
        with pytest.raises(CampaignError, match="duplicate seeds"):
            make_spec(seeds=(3, 3))

    def test_bool_seed_rejected(self):
        with pytest.raises(CampaignError, match="seeds must be integers"):
            make_spec(seeds=(True,))

    def test_nan_grid_value_rejected(self):
        with pytest.raises(CampaignError, match="finite"):
            make_spec(grid={"alpha": (math.nan,)})

    def test_inf_fixed_value_rejected(self):
        with pytest.raises(CampaignError, match="finite"):
            make_spec(fixed={"extra": math.inf})

    def test_non_json_value_rejected(self):
        with pytest.raises(CampaignError, match="JSON-representable"):
            make_spec(grid={"alpha": (object(),)})

    def test_non_string_mapping_key_rejected(self):
        with pytest.raises(CampaignError, match="keys.*must be strings"):
            canonical_value({1: "x"})

    def test_empty_axis_rejected(self):
        with pytest.raises(CampaignError, match="no values"):
            make_spec(grid={"alpha": ()})

    def test_duplicate_axis_values_rejected(self):
        with pytest.raises(CampaignError, match="duplicate values"):
            make_spec(grid={"alpha": (1, 1)})

    def test_tuple_and_list_spellings_are_the_same_value(self):
        # Canonicalisation happens before the duplicate check, so a tuple
        # and a list with the same elements are one value, not two.
        with pytest.raises(CampaignError, match="duplicate values"):
            make_spec(grid={"alpha": ((1, 2), [1, 2])})

    def test_axis_name_must_be_identifier(self):
        with pytest.raises(CampaignError, match="identifier"):
            make_spec(grid={"not an axis": (1,)})

    def test_grid_fixed_overlap_rejected(self):
        with pytest.raises(CampaignError, match="both as grid axes"):
            make_spec(grid={"alpha": (1, 2)}, fixed={"alpha": 3})

    def test_experiment_campaign_rejects_scenario_knob_axes(self):
        with pytest.raises(CampaignError, match="scenario knob axes"):
            make_spec(grid={"backend": ("vectorized", "reference")})

    def test_scenario_campaign_accepts_knob_axes(self):
        spec = make_spec(
            kind="scenario",
            target="diurnal",
            grid={"controller": (None, "reactive")},
            fixed={},
        )
        knobs, overrides = split_scenario_params(spec.cells()[0].params)
        assert knobs == {"controller": None}
        assert overrides == {}

    def test_replace_revalidates(self):
        spec = make_spec()
        with pytest.raises(CampaignError, match="duplicate seeds"):
            spec.replace(seeds=(5, 5))


class TestEnumeration:
    def test_num_cells_is_seed_times_grid_volume(self):
        assert make_spec().num_cells == 2 * 2 * 3

    def test_cells_are_seed_major_last_axis_fastest(self):
        cells = make_spec().cells()
        assert [cell.index for cell in cells] == list(range(12))
        assert [cell.seed for cell in cells] == [0] * 6 + [1] * 6
        assert [cell.params["mode"] for cell in cells[:3]] == ["a", "b", "c"]
        assert [cell.params["alpha"] for cell in cells[:6]] == [0.0] * 3 + [0.5] * 3

    def test_fixed_params_merge_into_every_cell(self):
        assert all(cell.params["extra"] == 7 for cell in make_spec().cells())

    def test_gridless_spec_has_one_cell_per_seed(self):
        spec = make_spec(grid={}, seeds=(0, 1, 2))
        assert [cell.params for cell in spec.cells()] == [{"extra": 7}] * 3

    def test_cell_ids_are_stable_across_enumerations(self):
        assert [c.cell_id for c in make_spec().cells()] == [
            c.cell_id for c in make_spec().cells()
        ]

    def test_cell_ids_are_content_addressed(self):
        base = CampaignCell(
            index=0, seed=0, params={"a": 1}, kind="experiment", target="t"
        )
        same_content = CampaignCell(
            index=0, seed=0, params={"a": 1}, kind="experiment", target="t"
        )
        other_seed = CampaignCell(
            index=0, seed=1, params={"a": 1}, kind="experiment", target="t"
        )
        other_params = CampaignCell(
            index=0, seed=0, params={"a": 2}, kind="experiment", target="t"
        )
        assert base.cell_id == same_content.cell_id
        assert base.cell_id != other_seed.cell_id
        assert base.cell_id != other_params.cell_id

    def test_tuple_vs_list_spelling_does_not_change_cell_ids(self):
        spec_tuple = make_spec(grid={"pair": ((1, 2), (3, 4))}, fixed={})
        spec_list = make_spec(grid={"pair": ([1, 2], [3, 4])}, fixed={})
        assert [c.cell_id for c in spec_tuple.cells()] == [
            c.cell_id for c in spec_list.cells()
        ]


class TestSerialisation:
    def test_json_round_trip_preserves_identity(self):
        spec = make_spec()
        document = json.loads(json.dumps(spec.to_json_dict()))
        loaded = CampaignSpec.from_json_dict(document)
        assert loaded.canonical_text() == spec.canonical_text()
        assert [c.cell_id for c in loaded.cells()] == [
            c.cell_id for c in spec.cells()
        ]

    def test_schema_tag_required(self):
        payload = make_spec().to_json_dict()
        payload["schema"] = "repro.campaign-spec/v0"
        with pytest.raises(CampaignError, match="schema"):
            CampaignSpec.from_json_dict(payload)
        assert SPEC_SCHEMA == "repro.campaign-spec/v1"

    def test_unknown_keys_rejected(self):
        payload = make_spec().to_json_dict()
        payload["surprise"] = 1
        with pytest.raises(CampaignError, match="unknown keys"):
            CampaignSpec.from_json_dict(payload)

    def test_non_object_document_rejected(self):
        with pytest.raises(CampaignError, match="JSON object"):
            CampaignSpec.from_json_dict([1, 2])

    def test_seeds_must_be_a_list(self):
        payload = make_spec().to_json_dict()
        payload["seeds"] = 0
        with pytest.raises(CampaignError, match="seeds"):
            CampaignSpec.from_json_dict(payload)

    def test_grid_must_be_an_object(self):
        payload = make_spec().to_json_dict()
        payload["grid"] = [1]
        with pytest.raises(CampaignError, match="grid"):
            CampaignSpec.from_json_dict(payload)

    def test_load_spec_file_round_trip(self, tmp_path):
        spec = make_spec()
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_json_dict()), encoding="utf-8")
        assert load_spec_file(path).canonical_text() == spec.canonical_text()

    def test_load_spec_file_missing(self, tmp_path):
        with pytest.raises(CampaignError, match="cannot read"):
            load_spec_file(tmp_path / "absent.json")

    def test_load_spec_file_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(CampaignError, match="cannot read"):
            load_spec_file(path)

    def test_canonical_json_sorts_keys_and_unrolls_tuples(self):
        assert canonical_json({"b": 1, "a": (2,)}) == '{"a":[2],"b":1}'

    def test_describe_spec_mentions_name_and_cell_count(self):
        text = describe_spec(make_spec())
        assert "unit" in text
        assert "12 cell(s)" in text
