"""Quality-of-service constraints and the baseline QoS construction.

Section 5.1.1 of the paper: "Our QoS constraint is determined by a baseline
system ... provisioned to meet a QoS target for some peak demand".  The
baseline runs flat out (``f = 1``, no low-power state) at a peak design
utilisation ``rho_b``; the QoS budget SleepScale must respect is the
performance that baseline would deliver:

* **Mean response time** constraint: the idealised (M/M/1) baseline at load
  ``rho_b`` has normalised mean response time ``mu * E[R] = 1 / (1 - rho_b)``
  (e.g. 5 for ``rho_b = 0.8``).
* **95th-percentile** constraint (the second row of Figure 6): the M/M/1
  baseline's response-time tail is ``Pr(R >= d) = e^{-mu (1 - rho_b) d}``, so
  the 95th-percentile deadline is ``ln(20) / (mu (1 - rho_b))`` — i.e. a
  normalised deadline of ``ln(20) / (1 - rho_b)`` service times.

Both constraints implement the same small interface so the policy manager
and the runtime controller are agnostic to which one is in force.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.simulation.metrics import SimulationResult


class QosConstraint(abc.ABC):
    """A predicate over simulation results: does this policy meet the SLA?"""

    @abc.abstractmethod
    def is_met(self, result: SimulationResult) -> bool:
        """Whether the metrics in *result* satisfy the constraint."""

    @abc.abstractmethod
    def describe(self) -> str:
        """One-line human-readable description for reports."""

    @abc.abstractmethod
    def slack(self, result: SimulationResult) -> float:
        """Signed slack: positive when the constraint is met, negative otherwise.

        Measured in the constraint's own units (normalised response time or
        seconds), so it can be used to rank infeasible policies when nothing
        meets the budget.
        """


def _check_rho_b(rho_b: float) -> float:
    if not 0.0 < rho_b < 1.0:
        raise ConfigurationError(
            f"peak design utilisation rho_b must lie in (0, 1), got {rho_b}"
        )
    return float(rho_b)


@dataclass(frozen=True)
class MeanResponseTimeConstraint(QosConstraint):
    """Normalised mean response time must not exceed *normalized_budget*.

    The normalisation is by the workload's mean job size (``mu * E[R]``),
    matching the paper's plots; :class:`SimulationResult` carries the mean
    service demand of the jobs it was computed from, so the check needs no
    extra context.
    """

    normalized_budget: float

    def __post_init__(self) -> None:
        if self.normalized_budget <= 0:
            raise ConfigurationError(
                f"response-time budget must be positive, got {self.normalized_budget}"
            )

    def is_met(self, result: SimulationResult) -> bool:
        return result.normalized_mean_response_time <= self.normalized_budget

    def slack(self, result: SimulationResult) -> float:
        return self.normalized_budget - result.normalized_mean_response_time

    def describe(self) -> str:
        return f"mu*E[R] <= {self.normalized_budget:.3g}"


@dataclass(frozen=True)
class PercentileResponseTimeConstraint(QosConstraint):
    """A response-time percentile must not exceed *deadline* seconds.

    The paper's second QoS formulation constrains the 95th-percentile
    response time (``Pr(R >= d)`` style), which is sensitive to the tails of
    the inter-arrival and service-time distributions.
    """

    deadline: float
    percentile: float = 95.0

    def __post_init__(self) -> None:
        if self.deadline <= 0:
            raise ConfigurationError(
                f"deadline must be positive, got {self.deadline}"
            )
        if not 0.0 < self.percentile < 100.0:
            raise ConfigurationError(
                f"percentile must lie in (0, 100), got {self.percentile}"
            )

    def is_met(self, result: SimulationResult) -> bool:
        return result.response_time_percentile(self.percentile) <= self.deadline

    def slack(self, result: SimulationResult) -> float:
        return self.deadline - result.response_time_percentile(self.percentile)

    def describe(self) -> str:
        return f"p{self.percentile:.0f}(R) <= {self.deadline:.4g}s"


# ---------------------------------------------------------------------------
# Baseline QoS construction
# ---------------------------------------------------------------------------


def baseline_normalized_mean_budget(rho_b: float) -> float:
    """The baseline's normalised mean response time, ``1 / (1 - rho_b)``."""
    return 1.0 / (1.0 - _check_rho_b(rho_b))


def baseline_mean_response_budget(rho_b: float, mean_service_time: float) -> float:
    """The baseline's mean response time in seconds, ``1 / ((1 - rho_b) mu)``."""
    if mean_service_time <= 0:
        raise ConfigurationError(
            f"mean service time must be positive, got {mean_service_time}"
        )
    return mean_service_time * baseline_normalized_mean_budget(rho_b)


def baseline_percentile_deadline(
    rho_b: float, mean_service_time: float, percentile: float = 95.0
) -> float:
    """The baseline's *percentile* response-time deadline in seconds.

    Derived from the idealised M/M/1 baseline at ``f = 1`` and load
    ``rho_b``: ``Pr(R >= d) = e^{-mu (1 - rho_b) d}``, solved for the target
    tail probability.
    """
    rho_b = _check_rho_b(rho_b)
    if mean_service_time <= 0:
        raise ConfigurationError(
            f"mean service time must be positive, got {mean_service_time}"
        )
    if not 0.0 < percentile < 100.0:
        raise ConfigurationError(f"percentile must lie in (0, 100), got {percentile}")
    tail = 1.0 - percentile / 100.0
    return mean_service_time * math.log(1.0 / tail) / (1.0 - rho_b)


def mean_qos_from_baseline(rho_b: float) -> MeanResponseTimeConstraint:
    """Mean response-time constraint implied by a peak design utilisation."""
    return MeanResponseTimeConstraint(baseline_normalized_mean_budget(rho_b))


def percentile_qos_from_baseline(
    rho_b: float, mean_service_time: float, percentile: float = 95.0
) -> PercentileResponseTimeConstraint:
    """95th-percentile constraint implied by a peak design utilisation."""
    return PercentileResponseTimeConstraint(
        deadline=baseline_percentile_deadline(rho_b, mean_service_time, percentile),
        percentile=percentile,
    )
