"""A setup-free always-on controller must be result-invisible.

The controller contract's oracle leg (the PR 7 analogue of the executor and
trace-backend parity suites): attaching a ``FarmController`` whose policy is
``always-on`` and whose ``SetupModel`` is free produces **bit-identical**
``FarmResult``s to a plain, uncontrolled ``ServerFarm.run`` — same total
energy, same per-server response-time arrays (hence dispatch assignments),
same per-epoch policy selections.  This suite pins that across every
registered scenario and the full executor × trace-backend grid, plus the
``ClusterRuntime`` threading and the ``Scenario.build``/CLI plumbing.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.cluster.controller import FarmController, SetupModel
from repro.exceptions import ExperimentError, ScenarioError
from repro.scenarios import available_scenarios, get_scenario
from tests.cluster.test_executor_parity import (
    _tiny_overrides,
    assert_farm_results_identical,
)

#: The full grid the contract quantifies over.  Serial and thread runs take
#: the boolean-mask dispatch path whatever the backend (shm/mmap storage
#: only changes where the arrays live); process runs with shm/mmap exercise
#: the zero-copy shard path under the controller as well.
GRID = tuple(
    (executor, backend)
    for executor in ("serial", "thread", "process")
    for backend in ("memory", "shm", "mmap")
)


def _free_always_on() -> FarmController:
    return FarmController(policy="always-on", setup=SetupModel.free())


def _plain_oracle(name: str, overrides: dict):
    """Uncontrolled serial/memory reference run for *name*.

    The autoscale scenarios embed a reactive controller by construction, so
    the oracle strips whatever controller the builder attached.
    """
    built = get_scenario(name).build(seed=9, executor="serial", **overrides)
    if built.farm.controller is not None:
        built = dataclasses.replace(
            built, farm=dataclasses.replace(built.farm, controller=None)
        )
    return built.run()


class TestAlwaysOnParityEverywhere:
    """All registered scenarios × {serial,thread,process} × {memory,shm,mmap}."""

    @pytest.fixture(params=sorted(available_scenarios()))
    def name(self, request):
        return request.param

    def test_setup_free_always_on_matches_uncontrolled(self, name):
        overrides = _tiny_overrides(name)
        oracle = _plain_oracle(name, overrides)
        for executor, backend in GRID:
            built = get_scenario(name).build(
                seed=9,
                executor=executor,
                trace_backend=backend,
                controller=_free_always_on(),
                **overrides,
            )
            built.farm.max_workers = 2
            result = built.run()
            assert_farm_results_identical(oracle, result)
            # The controlled run additionally reports its (full-fleet)
            # schedule and a zero setup bill.
            assert result.setup_energy == 0.0, (executor, backend)
            assert result.awake_counts is not None, (executor, backend)
            assert set(result.awake_counts) == {built.farm.num_servers}
            assert result.wake_transitions == ()


class TestPredictivePolicyParity:
    """The ``predictive`` policy is deterministic and executor-invariant.

    Unlike ``always-on``, a predictive controller actually re-sizes the
    fleet, so there is no uncontrolled oracle to compare against; the
    contract is instead that the serial/memory run *is* the oracle and the
    thread and process fast paths reproduce it bit-identically.
    """

    def _run(self, executor: str):
        overrides = _tiny_overrides("diurnal")
        built = get_scenario("diurnal").build(
            seed=9,
            executor=executor,
            controller=FarmController(policy="predictive", setup=SetupModel.free()),
            **overrides,
        )
        built.farm.max_workers = 2
        return built.run()

    def test_predictive_matches_serial_oracle_on_every_executor(self):
        oracle = self._run("serial")
        assert oracle.awake_counts is not None
        for executor in ("thread", "process"):
            assert_farm_results_identical(oracle, self._run(executor))

    def test_predictive_repeat_run_is_bit_identical(self):
        assert_farm_results_identical(self._run("serial"), self._run("serial"))


class TestControllerPlumbing:
    def test_build_policy_name_means_free_setup(self):
        built = get_scenario("diurnal").build(
            controller="always-on", **_tiny_overrides("diurnal")
        )
        controller = built.farm.controller
        assert controller is not None
        assert controller.policy_name == "always-on"
        assert controller.setup.is_free

    def test_build_replaces_the_embedded_controller(self):
        name = "autoscale-diurnal"
        embedded = get_scenario(name).build(**_tiny_overrides(name))
        assert embedded.farm.controller is not None
        assert embedded.farm.controller.policy_name == "reactive"
        swapped = get_scenario(name).build(
            controller=_free_always_on(), **_tiny_overrides(name)
        )
        assert swapped.farm.controller.policy_name == "always-on"

    def test_build_rejects_a_non_controller(self):
        with pytest.raises(ScenarioError, match="FarmController"):
            get_scenario("diurnal").build(controller=object())

    def test_chunked_controlled_run_matches_one_shot(self):
        """Controlled runs always plan over the full trace: chunk_jobs is
        documented as ignored, so a chunked call must be bit-identical."""
        overrides = _tiny_overrides("diurnal")
        scenario = get_scenario("diurnal")
        one_shot = scenario.build(controller=_free_always_on(), **overrides)
        chunked = scenario.build(controller=_free_always_on(), **overrides)
        assert_farm_results_identical(
            one_shot.run(),
            chunked.farm.run(chunked.jobs, chunk_jobs=64),
        )

    def test_cluster_runtime_threads_the_controller_through(self):
        from repro.cluster.farm import ClusterRuntime
        from repro.core.runtime import RuntimeConfig
        from repro.power.platform import xeon_power_model
        from repro.workloads.generator import generate_jobs
        from repro.workloads.spec import dns_workload
        from tests.cluster.test_executor_parity import (
            _predictor_for,
            _strategy_for,
        )

        spec = dns_workload()
        jobs = generate_jobs(spec, num_jobs=1500, utilization=0.4, seed=3)

        def cluster(controller):
            return ClusterRuntime(
                num_servers=3,
                power_model=xeon_power_model(),
                spec=spec,
                strategy_factory=_strategy_for,
                predictor_factory=_predictor_for,
                config=RuntimeConfig(epoch_minutes=1.0, rho_b=0.8),
                controller=controller,
            )

        plain = cluster(None)
        controlled = cluster(_free_always_on())
        assert controlled.as_server_farm().controller is not None
        assert_farm_results_identical(plain.run(jobs), controlled.run(jobs))

    def test_run_scenario_rejects_controller_override(self):
        from repro.experiments.scenario_runner import run_scenario

        with pytest.raises(ExperimentError, match="controller"):
            run_scenario("diurnal", overrides={"controller": "reactive"})

    def test_run_scenario_rejects_setup_flags_without_controller(self):
        from repro.experiments.scenario_runner import run_scenario

        with pytest.raises(ExperimentError, match="controller"):
            run_scenario(
                "diurnal",
                overrides={"duration_minutes": 4},
                setup_latency_s=30.0,
            )

    def test_report_controller_block_round_trips(self):
        from repro.experiments.scenario_runner import (
            REPORT_SCHEMA,
            run_scenario,
            validate_report,
        )

        report = run_scenario(
            "autoscale-diurnal",
            seed=3,
            overrides={"duration_minutes": 6},
        )
        assert report["schema"] == REPORT_SCHEMA
        validate_report(report)
        block = report["controller"]
        assert block is not None
        assert block["policy"] == "reactive"
        assert block["min_awake"] == 1
        assert block["setup_latency_s"] == 30.0
        assert len(block["awake_counts"]) >= 1

    def test_report_without_controller_has_null_block(self):
        from repro.experiments.scenario_runner import run_scenario, validate_report

        report = run_scenario(
            "diurnal", seed=0, overrides={"duration_minutes": 4}
        )
        assert report["controller"] is None
        validate_report(report)
