"""Common infrastructure for the experiment harness.

Every table and figure of the paper's evaluation has a module in this
package exposing a ``run(config) -> ExperimentResult`` function.  An
:class:`ExperimentResult` is deliberately plain — a list of row dictionaries
plus free-form metadata — so the benchmark harness can print it, assert
qualitative expectations against it, and EXPERIMENTS.md can quote it
directly.

:class:`ExperimentConfig` carries the knobs shared by all experiments, most
importantly the ``fast`` flag: benchmarks run with ``fast=True`` (smaller job
counts, coarser grids, shorter trace windows) so the whole suite finishes in
minutes; the full-fidelity settings match the paper (10,000 jobs per policy,
fine frequency grids, 2 AM–8 PM evaluation windows).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence
from typing import Any

from repro.exceptions import ExperimentError


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared experiment knobs.

    Parameters
    ----------
    fast:
        Use reduced job counts / grids / trace windows so the experiment
        completes in seconds rather than minutes.  The qualitative shape of
        every result is preserved; only statistical noise increases.
    seed:
        Base random seed; experiments derive per-case seeds from it.
    num_jobs:
        Jobs per policy evaluation for offline sweeps; ``None`` selects
        10,000 (the paper's setting) or 3,000 in fast mode.
    frequency_step:
        Frequency grid step for sweeps; ``None`` selects 0.01 (the paper's
        plotting grid) or 0.05 in fast mode.
    """

    fast: bool = True
    seed: int = 0
    num_jobs: int | None = None
    frequency_step: float | None = None

    @property
    def sweep_num_jobs(self) -> int:
        """Jobs per policy evaluation in frequency sweeps."""
        if self.num_jobs is not None:
            return self.num_jobs
        return 3_000 if self.fast else 10_000

    @property
    def sweep_frequency_step(self) -> float:
        """Frequency grid step in sweeps."""
        if self.frequency_step is not None:
            return self.frequency_step
        return 0.05 if self.fast else 0.01

    @property
    def selection_frequency_step(self) -> float:
        """Frequency grid step for policy-selection experiments (Figure 6)."""
        if self.frequency_step is not None:
            return self.frequency_step
        return 0.05 if self.fast else 0.02

    @property
    def runtime_hours(self) -> float:
        """Length of the utilisation-trace window for runtime experiments."""
        return 3.0 if self.fast else 18.0

    @property
    def characterization_jobs(self) -> int:
        """Jobs used by the runtime policy manager when no log is available."""
        return 1_000 if self.fast else 2_000


@dataclass(frozen=True)
class ExperimentResult:
    """Output of one experiment: tabular rows plus metadata and notes."""

    name: str
    description: str
    rows: tuple[Mapping[str, Any], ...]
    metadata: Mapping[str, Any] = field(default_factory=dict)
    notes: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.rows:
            raise ExperimentError(f"experiment {self.name!r} produced no rows")

    def column(self, key: str) -> list[Any]:
        """All values of one column, in row order."""
        return [row[key] for row in self.rows]

    def filtered(self, **criteria: Any) -> list[Mapping[str, Any]]:
        """Rows whose columns match every keyword criterion exactly."""
        selected = []
        for row in self.rows:
            if all(row.get(key) == value for key, value in criteria.items()):
                selected.append(row)
        return selected

    def unique(self, key: str) -> list[Any]:
        """Distinct values of one column, in first-appearance order."""
        seen: list[Any] = []
        for row in self.rows:
            value = row[key]
            if value not in seen:
                seen.append(value)
        return seen


def format_rows(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    float_format: str = "{:.4g}",
) -> str:
    """Render rows as a fixed-width text table (for benchmark output and docs)."""
    if not rows:
        raise ExperimentError("cannot format an empty row list")
    if columns is None:
        columns = list(rows[0].keys())

    def render(value: Any) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), *(len(line[index]) for line in rendered))
        for index, column in enumerate(columns)
    ]
    header = "  ".join(str(c).ljust(w) for c, w in zip(columns, widths, strict=True))
    separator = "  ".join("-" * w for w in widths)
    body = "\n".join(
        "  ".join(cell.ljust(w) for cell, w in zip(line, widths, strict=True)) for line in rendered
    )
    return f"{header}\n{separator}\n{body}"


def format_result(result: ExperimentResult, columns: Sequence[str] | None = None) -> str:
    """Render a full experiment result, including its notes."""
    parts = [f"== {result.name}: {result.description} =="]
    parts.append(format_rows(result.rows, columns))
    for note in result.notes:
        parts.append(f"note: {note}")
    return "\n".join(parts)
