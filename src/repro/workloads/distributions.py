"""Probability distributions for inter-arrival and service times.

The idealised analysis of the paper (Section 4) uses Poisson arrivals and
exponential service times.  The SleepScale policy manager (Section 5) instead
works with *arbitrary* empirical statistics; the paper sources them from the
BigHouse simulator, which stores inter-arrival and service-time distributions
accumulated from live traces and summarises them by their mean and coefficient
of variation (Cv, Table 5).

Because the BigHouse CDF files are not available, this module provides the
standard substitution used in queueing studies: distributions *moment-matched*
to the published mean and Cv —

* Cv == 1  → exponential,
* Cv > 1   → two-phase balanced-means hyper-exponential,
* Cv < 1   → Erlang (sum of exponentials) rounded to the nearest feasible Cv,
* Cv == 0  → deterministic.

plus lognormal, Pareto, uniform and empirical distributions for sensitivity
studies and for replaying logged job events (Section 5.2.1 works directly
with logs from past epochs).

All distributions expose the same interface (:class:`Distribution`): ``mean``,
``cv``, ``sample(n, rng)`` and ``scaled(factor)``, the last of which is how the
library scales inter-arrival times to a target utilisation and service times
to a DVFS frequency.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError


class Distribution(abc.ABC):
    """A non-negative random variable with known first two moments."""

    @property
    @abc.abstractmethod
    def mean(self) -> float:
        """Expected value."""

    @property
    @abc.abstractmethod
    def cv(self) -> float:
        """Coefficient of variation (standard deviation divided by the mean)."""

    @abc.abstractmethod
    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` independent samples using *rng*."""

    @abc.abstractmethod
    def scaled(self, factor: float) -> "Distribution":
        """Return the distribution of ``factor * X`` (same Cv, scaled mean)."""

    # -- derived quantities -------------------------------------------------

    @property
    def variance(self) -> float:
        """Variance, derived from the mean and Cv."""
        return (self.cv * self.mean) ** 2

    @property
    def second_moment(self) -> float:
        """``E[X^2]``, used by M/G/1 formulas (Pollaczek–Khinchine)."""
        return self.variance + self.mean**2

    @property
    def rate(self) -> float:
        """``1 / mean`` — the rate parameter for arrival/service processes."""
        if self.mean <= 0:
            raise ConfigurationError("rate undefined for zero-mean distribution")
        return 1.0 / self.mean

    def _check_n(self, n: int) -> None:
        if n < 0:
            raise ConfigurationError(f"sample count must be non-negative, got {n}")


def _check_positive(name: str, value: float) -> float:
    if not (value > 0 and math.isfinite(value)):
        raise ConfigurationError(f"{name} must be positive and finite, got {value}")
    return float(value)


def _check_scale(factor: float) -> float:
    if not (factor > 0 and math.isfinite(factor)):
        raise ConfigurationError(f"scale factor must be positive, got {factor}")
    return float(factor)


@dataclass(frozen=True)
class Deterministic(Distribution):
    """A degenerate distribution: every sample equals *value* (Cv = 0)."""

    value: float

    def __post_init__(self) -> None:
        if self.value < 0 or not math.isfinite(self.value):
            raise ConfigurationError(
                f"deterministic value must be non-negative, got {self.value}"
            )

    @property
    def mean(self) -> float:
        return self.value

    @property
    def cv(self) -> float:
        return 0.0

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        self._check_n(n)
        return np.full(n, self.value, dtype=float)

    def scaled(self, factor: float) -> "Deterministic":
        return Deterministic(self.value * _check_scale(factor))


@dataclass(frozen=True)
class Exponential(Distribution):
    """Exponential distribution with the given mean (Cv = 1)."""

    mean_value: float

    def __post_init__(self) -> None:
        _check_positive("mean", self.mean_value)

    @property
    def mean(self) -> float:
        return self.mean_value

    @property
    def cv(self) -> float:
        return 1.0

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        self._check_n(n)
        return rng.exponential(self.mean_value, size=n)

    def scaled(self, factor: float) -> "Exponential":
        return Exponential(self.mean_value * _check_scale(factor))


@dataclass(frozen=True)
class HyperExponential(Distribution):
    """Two-phase hyper-exponential distribution (Cv > 1).

    With probability ``p1`` a sample is exponential with mean ``mean1``,
    otherwise exponential with mean ``mean2``.  Use
    :meth:`from_mean_cv` to build one matched to a target mean and Cv using
    the *balanced means* construction (``p1 * mean1 == p2 * mean2``), the
    standard choice in performance modelling.
    """

    p1: float
    mean1: float
    mean2: float

    def __post_init__(self) -> None:
        if not 0.0 < self.p1 < 1.0:
            raise ConfigurationError(f"p1 must lie in (0, 1), got {self.p1}")
        _check_positive("mean1", self.mean1)
        _check_positive("mean2", self.mean2)

    @classmethod
    def from_mean_cv(cls, mean: float, cv: float) -> "HyperExponential":
        """Balanced-means H2 matched to *mean* and *cv* (requires cv > 1)."""
        _check_positive("mean", mean)
        if cv <= 1.0:
            raise ConfigurationError(
                f"hyper-exponential requires Cv > 1, got {cv}"
            )
        scv = cv * cv
        # Balanced means: p1/mu1 == p2/mu2 == mean/2.
        p1 = 0.5 * (1.0 + math.sqrt((scv - 1.0) / (scv + 1.0)))
        mean1 = mean / (2.0 * p1)
        mean2 = mean / (2.0 * (1.0 - p1))
        return cls(p1=p1, mean1=mean1, mean2=mean2)

    @property
    def p2(self) -> float:
        """Probability of the second phase."""
        return 1.0 - self.p1

    @property
    def mean(self) -> float:
        return self.p1 * self.mean1 + self.p2 * self.mean2

    @property
    def second_moment(self) -> float:
        return 2.0 * (self.p1 * self.mean1**2 + self.p2 * self.mean2**2)

    @property
    def cv(self) -> float:
        mean = self.mean
        variance = self.second_moment - mean**2
        return math.sqrt(max(variance, 0.0)) / mean

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        self._check_n(n)
        choose_first = rng.random(n) < self.p1
        samples = np.where(
            choose_first,
            rng.exponential(self.mean1, size=n),
            rng.exponential(self.mean2, size=n),
        )
        return samples

    def scaled(self, factor: float) -> "HyperExponential":
        factor = _check_scale(factor)
        return HyperExponential(self.p1, self.mean1 * factor, self.mean2 * factor)


@dataclass(frozen=True)
class Erlang(Distribution):
    """Erlang-k distribution: sum of *k* exponentials (Cv = 1/sqrt(k) < 1)."""

    k: int
    mean_value: float

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ConfigurationError(f"Erlang shape k must be >= 1, got {self.k}")
        _check_positive("mean", self.mean_value)

    @classmethod
    def from_mean_cv(cls, mean: float, cv: float) -> "Erlang":
        """Erlang with shape ``k = round(1 / cv**2)`` matched to *mean*.

        The shape is capped at 10,000 phases — beyond that the distribution
        is indistinguishable from deterministic (Cv = 0.01) and an unbounded
        shape would only risk numerical overflow.
        """
        _check_positive("mean", mean)
        if not 0.0 < cv <= 1.0:
            raise ConfigurationError(f"Erlang requires 0 < Cv <= 1, got {cv}")
        cv = max(cv, 1e-2)
        k = max(1, min(10_000, round(1.0 / (cv * cv))))
        return cls(k=k, mean_value=mean)

    @property
    def mean(self) -> float:
        return self.mean_value

    @property
    def cv(self) -> float:
        return 1.0 / math.sqrt(self.k)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        self._check_n(n)
        return rng.gamma(shape=self.k, scale=self.mean_value / self.k, size=n)

    def scaled(self, factor: float) -> "Erlang":
        return Erlang(self.k, self.mean_value * _check_scale(factor))


@dataclass(frozen=True)
class LogNormal(Distribution):
    """Lognormal distribution parameterised directly by mean and Cv."""

    mean_value: float
    cv_value: float

    def __post_init__(self) -> None:
        _check_positive("mean", self.mean_value)
        if self.cv_value <= 0:
            raise ConfigurationError(f"Cv must be positive, got {self.cv_value}")

    @property
    def mean(self) -> float:
        return self.mean_value

    @property
    def cv(self) -> float:
        return self.cv_value

    @property
    def _sigma(self) -> float:
        return math.sqrt(math.log(1.0 + self.cv_value**2))

    @property
    def _mu(self) -> float:
        return math.log(self.mean_value) - 0.5 * self._sigma**2

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        self._check_n(n)
        return rng.lognormal(mean=self._mu, sigma=self._sigma, size=n)

    def scaled(self, factor: float) -> "LogNormal":
        return LogNormal(self.mean_value * _check_scale(factor), self.cv_value)


@dataclass(frozen=True)
class Pareto(Distribution):
    """Lomax/Pareto-II heavy-tailed distribution with finite variance.

    Requires shape ``alpha > 2`` so the mean and variance exist; used for
    tail-sensitivity studies around the 95th-percentile QoS constraint.
    """

    alpha: float
    mean_value: float

    def __post_init__(self) -> None:
        if self.alpha <= 2.0:
            raise ConfigurationError(
                f"Pareto shape must exceed 2 for finite variance, got {self.alpha}"
            )
        _check_positive("mean", self.mean_value)

    @property
    def _scale(self) -> float:
        # Lomax mean = scale / (alpha - 1)
        return self.mean_value * (self.alpha - 1.0)

    @property
    def mean(self) -> float:
        return self.mean_value

    @property
    def cv(self) -> float:
        variance = (
            self._scale**2
            * self.alpha
            / ((self.alpha - 1.0) ** 2 * (self.alpha - 2.0))
        )
        return math.sqrt(variance) / self.mean_value

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        self._check_n(n)
        # Lomax sampling via inverse CDF of Pareto-II.
        uniform = rng.random(n)
        return self._scale * ((1.0 - uniform) ** (-1.0 / self.alpha) - 1.0)

    def scaled(self, factor: float) -> "Pareto":
        return Pareto(self.alpha, self.mean_value * _check_scale(factor))


@dataclass(frozen=True)
class Uniform(Distribution):
    """Uniform distribution on ``[low, high]``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.low < self.high:
            raise ConfigurationError(
                f"uniform bounds must satisfy 0 <= low < high, got "
                f"[{self.low}, {self.high}]"
            )

    @property
    def mean(self) -> float:
        return 0.5 * (self.low + self.high)

    @property
    def cv(self) -> float:
        std = (self.high - self.low) / math.sqrt(12.0)
        return std / self.mean

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        self._check_n(n)
        return rng.uniform(self.low, self.high, size=n)

    def scaled(self, factor: float) -> "Uniform":
        factor = _check_scale(factor)
        return Uniform(self.low * factor, self.high * factor)


class Empirical(Distribution):
    """Empirical distribution backed by observed samples.

    This is how SleepScale's policy manager consumes the logged arrival and
    service times of previous epochs (Section 5.2.1): rather than fitting a
    parametric model, the logged values are resampled (bootstrap) or replayed
    directly.  ``scaled`` multiplies every logged value, which is exactly the
    paper's "the empirical inter-arrival times between jobs are scaled to
    match the upcoming predicted utilization".
    """

    def __init__(self, samples: np.ndarray | list[float]):
        values = np.asarray(samples, dtype=float)
        if values.size == 0:
            raise ConfigurationError("empirical distribution needs at least one sample")
        if np.any(values < 0) or not np.all(np.isfinite(values)):
            raise ConfigurationError(
                "empirical samples must be non-negative and finite"
            )
        self._values = values

    @property
    def values(self) -> np.ndarray:
        """The underlying observations (read-only view)."""
        view = self._values.view()
        view.flags.writeable = False
        return view

    @property
    def mean(self) -> float:
        return float(np.mean(self._values))

    @property
    def cv(self) -> float:
        mean = self.mean
        if mean == 0:
            return 0.0
        return float(np.std(self._values) / mean)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        self._check_n(n)
        return rng.choice(self._values, size=n, replace=True)

    def scaled(self, factor: float) -> "Empirical":
        return Empirical(self._values * _check_scale(factor))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Empirical):
            return NotImplemented
        return np.array_equal(self._values, other._values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Empirical(n={self._values.size}, mean={self.mean:.4g}, cv={self.cv:.3g})"


def from_mean_cv(mean: float, cv: float) -> Distribution:
    """Moment-matched distribution for a target *mean* and coefficient of variation.

    This is the substitution for BigHouse's empirical CDFs (DESIGN.md §5):

    * ``cv < 0.01``     → :class:`Deterministic` (variability is negligible)
    * ``0.01 <= cv < 0.99`` → :class:`Erlang`
    * ``0.99 <= cv <= 1.01`` → :class:`Exponential`
    * ``cv > 1.01``     → balanced-means :class:`HyperExponential`
    """
    _check_positive("mean", mean)
    if cv < 0 or not math.isfinite(cv):
        raise ConfigurationError(f"Cv must be non-negative and finite, got {cv}")
    if cv < 0.01:
        return Deterministic(mean)
    if cv < 0.99:
        return Erlang.from_mean_cv(mean, cv)
    if cv <= 1.01:
        return Exponential(mean)
    return HyperExponential.from_mean_cv(mean, cv)
