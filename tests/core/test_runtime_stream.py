"""Incremental epoch feeding: ``RuntimeSession`` vs. one-shot ``run``.

``SleepScaleRuntime.run`` is built on the streaming session, so these tests
pin the part that matters for chunked farm runs: feeding the same trace in
arbitrary arrival-ordered chunks produces *exactly* the same
``RuntimeResult`` (epoch records, response times, energy, duration) as one
``run`` call, for both stateless and stateful (policy-searching,
predicting) strategies.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.qos import mean_qos_from_baseline
from repro.core.runtime import RuntimeConfig, SleepScaleRuntime
from repro.core.strategies import FixedPolicyStrategy, sleepscale_strategy
from repro.exceptions import ConfigurationError, TraceError
from repro.policies.policy import race_to_halt_policy
from repro.power.states import C6_S0I
from repro.prediction.lms_cusum import LmsCusumPredictor
from repro.prediction.naive import NaivePreviousPredictor
from repro.workloads.generator import generate_trace_driven_jobs
from repro.workloads.jobs import JobTrace
from repro.workloads.traces import step_trace


@pytest.fixture(scope="module")
def stepped_jobs(dns_empirical):
    trace = step_trace(0.15, 0.8, num_samples=16)
    return generate_trace_driven_jobs(dns_empirical, trace, seed=13).jobs


def build_runtime(xeon, spec, kind):
    config = RuntimeConfig(
        epoch_minutes=5.0, rho_b=0.8, over_provisioning=0.35, log_epochs=2
    )
    if kind == "fixed":
        strategy = FixedPolicyStrategy(race_to_halt_policy(xeon, C6_S0I))
        predictor = NaivePreviousPredictor()
    else:
        strategy = sleepscale_strategy(
            xeon, mean_qos_from_baseline(0.8), characterization_jobs=300, seed=1
        )
        predictor = LmsCusumPredictor(history=6)
    return SleepScaleRuntime(
        power_model=xeon,
        spec=spec,
        strategy=strategy,
        predictor=predictor,
        config=config,
    )


class TestStreamEqualsRun:
    @pytest.mark.parametrize("kind", ["fixed", "sleepscale"])
    @pytest.mark.parametrize("chunk", [1, 7, 211, 10_000_000])
    def test_chunked_feed_is_exact(self, xeon, dns_empirical, stepped_jobs, kind, chunk):
        reference = build_runtime(xeon, dns_empirical, kind).run(stepped_jobs)
        session = build_runtime(xeon, dns_empirical, kind).stream()
        arrivals = stepped_jobs.arrival_times
        demands = stepped_jobs.service_demands
        for start in range(0, len(stepped_jobs), chunk):
            session.feed(arrivals[start : start + chunk], demands[start : start + chunk])
        result = session.finish()
        assert result.total_energy == reference.total_energy
        assert result.total_duration == reference.total_duration
        np.testing.assert_array_equal(result.response_times, reference.response_times)
        assert result.epochs == reference.epochs

    def test_job_trace_chunks_accepted(self, xeon, dns_empirical, stepped_jobs):
        reference = build_runtime(xeon, dns_empirical, "fixed").run(stepped_jobs)
        session = build_runtime(xeon, dns_empirical, "fixed").stream()
        half = len(stepped_jobs) // 2
        session.feed(
            JobTrace(
                stepped_jobs.arrival_times[:half], stepped_jobs.service_demands[:half]
            )
        )
        session.feed(
            JobTrace(
                stepped_jobs.arrival_times[half:], stepped_jobs.service_demands[half:]
            )
        )
        result = session.finish()
        assert result.total_energy == reference.total_energy
        assert result.epochs == reference.epochs

    def test_epoch_boundary_arrivals(self, xeon, dns_empirical):
        """Jobs exactly on epoch boundaries keep one-shot semantics."""
        jobs = JobTrace([0.0, 100.0, 300.0, 600.0, 900.0], [0.1, 0.2, 0.3, 0.4, 0.1])
        reference = build_runtime(xeon, dns_empirical, "fixed").run(jobs)
        for chunk in (1, 2, 3):
            session = build_runtime(xeon, dns_empirical, "fixed").stream()
            for start in range(0, len(jobs), chunk):
                session.feed(
                    jobs.arrival_times[start : start + chunk],
                    jobs.service_demands[start : start + chunk],
                )
            result = session.finish()
            assert result.total_energy == reference.total_energy
            assert result.epochs == reference.epochs

    def test_empty_session_with_horizon(self, xeon, dns_empirical):
        reference = build_runtime(xeon, dns_empirical, "fixed").run(
            JobTrace.empty(), horizon=1234.5
        )
        session = build_runtime(xeon, dns_empirical, "fixed").stream()
        result = session.finish(horizon=1234.5)
        assert result.total_energy == reference.total_energy
        assert result.total_duration == reference.total_duration
        assert result.epochs == reference.epochs


class TestSessionValidation:
    def test_out_of_order_chunks_rejected(self, xeon, dns_empirical):
        session = build_runtime(xeon, dns_empirical, "fixed").stream()
        session.feed(np.array([10.0, 20.0]), np.array([0.1, 0.1]))
        with pytest.raises(TraceError, match="arrival order"):
            session.feed(np.array([5.0]), np.array([0.1]))

    def test_unsorted_chunk_rejected(self, xeon, dns_empirical):
        session = build_runtime(xeon, dns_empirical, "fixed").stream()
        with pytest.raises(TraceError):
            session.feed(np.array([10.0, 5.0]), np.array([0.1, 0.1]))

    def test_bad_arrays_rejected(self, xeon, dns_empirical):
        session = build_runtime(xeon, dns_empirical, "fixed").stream()
        with pytest.raises(ConfigurationError):
            session.feed(np.array([1.0]))
        with pytest.raises(TraceError):
            session.feed(np.array([1.0, 2.0]), np.array([0.1]))
        with pytest.raises(TraceError):
            session.feed(np.array([1.0]), np.array([-0.5]))

    def test_finish_is_terminal(self, xeon, dns_empirical):
        session = build_runtime(xeon, dns_empirical, "fixed").stream()
        session.feed(np.array([1.0]), np.array([0.1]))
        session.finish()
        with pytest.raises(ConfigurationError, match="finished"):
            session.finish()
        with pytest.raises(ConfigurationError, match="finished"):
            session.feed(np.array([2.0]), np.array([0.1]))

    def test_empty_chunk_is_a_no_op(self, xeon, dns_empirical):
        session = build_runtime(xeon, dns_empirical, "fixed").stream()
        session.feed(np.empty(0), np.empty(0))
        session.feed(np.array([1.0]), np.array([0.1]))
        result = session.finish()
        assert result.num_jobs == 1
