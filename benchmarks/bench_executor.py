"""Executor benchmark: serial vs thread vs process on the mega-farm fleet.

Runs the registered ``mega-farm`` scenario (64 mixed Xeon/Atom servers at
defaults, least-loaded speed-aware dispatch, short epochs) once per
executor and reports wall-clock plus speedup over the serial oracle.
**Executor parity is asserted in-benchmark**: all three runs must produce
bit-identical ``FarmResult``s — same total energy, same per-server
response-time arrays (hence identical dispatch assignments), same
per-epoch policy selections — and any divergence aborts the benchmark.

The thread row documents *why* the process executor exists: the per-server
epoch loops are Python-heavy (policy search per epoch), so the thread pool
stays GIL-bound near 1x while the process pool scales with cores.

The ``>= min-speedup`` gate on the process executor is enforced only on
machines with at least four CPUs (``--gate auto``, the default) — on a
single-core runner the measurement is still recorded, honestly, as ~1x.

``--mode storage`` benchmarks the zero-copy trace-storage path instead:
it pickles every per-server shard task the process executor would ship —
the memory path's :class:`~repro.cluster.farm.ServerShardTask` (carrying a
full per-server ``JobTrace``) against the zero-copy
:class:`~repro.cluster.farm.SharedServerShardTask` (carrying constant-size
descriptors into a shared-memory arena) — and gates on the serialized-bytes
reduction (deterministic, so enforced on any machine).  It then times the
process path end to end under ``trace_backend="memory"`` vs ``"shm"``,
asserting the two runs stay bit-identical.

Run directly (sizes shrink for CI smoke)::

    PYTHONPATH=src python benchmarks/bench_executor.py --output BENCH_pr5.json
    PYTHONPATH=src python benchmarks/bench_executor.py --mode storage \\
        --output BENCH_pr6.json

Not a pytest module on purpose: the measurements need fixed large sizes and
a JSON artifact, not statistical repetition.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import pickle
import sys
import time
from datetime import date

import numpy as np

from repro.cluster.farm import ServerShardTask, SharedServerShardTask
from repro.scenarios import get_scenario
from repro.workloads.storage import SharedTraceArena

#: Executors compared, serial first (the oracle the others must match).
EXECUTOR_ORDER = ("serial", "thread", "process")

#: Cores below which the speedup gate is skipped under ``--gate auto``.
GATE_MIN_CPUS = 4


def _epoch_signature(result):
    return [
        (epoch.policy_label, epoch.sleep_state, epoch.selected_frequency)
        for epoch in result.epochs
    ]


def _assert_parity(executor: str, oracle, candidate) -> None:
    # repro: ignore[REP004] -- in-benchmark oracle-parity gate: the executor
    # contract pins thread/process FarmResults bit-identical to serial, so
    # exact equality is the point; an approximate check would mask drift.
    if candidate.total_energy != oracle.total_energy:
        raise SystemExit(
            f"FATAL: executor {executor!r} diverged from serial "
            f"(energy {candidate.total_energy!r} != {oracle.total_energy!r})"
        )
    for index, (one, other) in enumerate(
        zip(oracle.per_server, candidate.per_server)
    ):
        if (one is None) != (other is None):
            raise SystemExit(
                f"FATAL: executor {executor!r} changed server {index}'s "
                "activity (different dispatch assignments)"
            )
        if one is None:
            continue
        if not np.array_equal(one.response_times, other.response_times):
            raise SystemExit(
                f"FATAL: executor {executor!r} changed server {index}'s "
                "response times (different dispatch or epoch behaviour)"
            )
        if _epoch_signature(one) != _epoch_signature(other):
            raise SystemExit(
                f"FATAL: executor {executor!r} changed server {index}'s "
                "per-epoch policy selections"
            )


def bench(
    duration_minutes: int,
    xeon_servers: int,
    atom_servers: int,
    epoch_minutes: float,
    workers: int,
    seed: int,
) -> dict:
    built = get_scenario("mega-farm").build(
        seed=seed,
        duration_minutes=duration_minutes,
        xeon_servers=xeon_servers,
        atom_servers=atom_servers,
        epoch_minutes=epoch_minutes,
    )
    print(
        f"mega-farm: {built.farm.num_servers} servers, "
        f"{built.num_jobs} jobs, {duration_minutes} min, "
        f"epoch {epoch_minutes} min, {workers} workers, "
        f"{os.cpu_count()} cpus"
    )
    rows: dict[str, dict] = {}
    results = {}
    for executor in EXECUTOR_ORDER:
        farm = dataclasses.replace(
            built.farm, executor=executor, max_workers=workers
        )
        started = time.perf_counter()
        result = farm.run(built.jobs)
        elapsed = time.perf_counter() - started
        results[executor] = result
        rows[executor] = {
            "seconds": round(elapsed, 3),
            "total_energy_j": result.total_energy,
        }
        print(f"  {executor:8s} {elapsed:8.2f} s")
    for executor in EXECUTOR_ORDER[1:]:
        _assert_parity(executor, results["serial"], results[executor])
        rows[executor]["speedup"] = round(
            rows["serial"]["seconds"] / rows[executor]["seconds"], 2
        )
        rows[executor]["parity"] = True
        print(
            f"  {executor:8s} speedup {rows[executor]['speedup']:5.2f}x  "
            "parity=True"
        )
    return {
        "servers": built.farm.num_servers,
        "jobs": built.num_jobs,
        "duration_minutes": duration_minutes,
        "epoch_minutes": epoch_minutes,
        "workers": workers,
        "executors": rows,
    }


def _shard_bytes(farm, jobs) -> dict:
    """Serialized bytes per shard: memory-path tasks vs zero-copy descriptors.

    Reconstructs exactly the task lists the two process paths ship (the
    memory path's per-server ``JobTrace`` copies, the shm path's narrowed
    descriptors into the server-grouped published arrays) and measures
    ``pickle.dumps`` of each shard — the bytes that actually cross the
    process boundary.
    """
    use_cache = farm.search_cache is not None
    streams = farm.dispatcher.dispatch(
        jobs, farm.num_servers, server_speeds=farm.dispatch_speeds
    )
    memory_bytes = [
        len(
            pickle.dumps(
                ServerShardTask(
                    server=farm.servers[index],
                    spec=farm.spec,
                    jobs=stream,
                    use_cache=use_cache,
                )
            )
        )
        for index, stream in enumerate(streams)
        if stream is not None
    ]
    assignment = farm.dispatcher.validated_assignment(
        jobs, farm.num_servers, server_speeds=farm.dispatch_speeds
    )
    counts = np.bincount(assignment, minlength=farm.num_servers)
    order = np.argsort(assignment, kind="stable")
    offsets = np.concatenate(([0], np.cumsum(counts)))
    with SharedTraceArena("shm") as arena:
        arrivals = arena.publish(jobs.arrival_times[order], "arrivals")
        demands = arena.publish(jobs.service_demands[order], "demands")
        shared_bytes = [
            len(
                pickle.dumps(
                    SharedServerShardTask(
                        server=farm.servers[index],
                        spec=farm.spec,
                        use_cache=use_cache,
                        arrivals=arrivals.narrow(
                            int(offsets[index]), int(counts[index])
                        ),
                        demands=demands.narrow(
                            int(offsets[index]), int(counts[index])
                        ),
                    )
                )
            )
            for index in range(farm.num_servers)
            if counts[index] > 0
        ]
    reduction = 1.0 - sum(shared_bytes) / sum(memory_bytes)
    return {
        "shards": len(memory_bytes),
        "memory_total_bytes": sum(memory_bytes),
        "memory_max_bytes": max(memory_bytes),
        "shared_total_bytes": sum(shared_bytes),
        "shared_max_bytes": max(shared_bytes),
        "reduction": round(reduction, 4),
    }


def bench_storage(
    duration_minutes: int,
    xeon_servers: int,
    atom_servers: int,
    epoch_minutes: float,
    workers: int,
    seed: int,
    repeat: int = 1,
) -> dict:
    built = get_scenario("mega-farm").build(
        seed=seed,
        duration_minutes=duration_minutes,
        xeon_servers=xeon_servers,
        atom_servers=atom_servers,
        epoch_minutes=epoch_minutes,
    )
    print(
        f"mega-farm: {built.farm.num_servers} servers, "
        f"{built.num_jobs} jobs, {duration_minutes} min, "
        f"epoch {epoch_minutes} min, {workers} workers, "
        f"{os.cpu_count()} cpus, best of {repeat}"
    )
    shard_bytes = _shard_bytes(built.farm, built.jobs)
    print(
        f"  shard bytes: memory {shard_bytes['memory_total_bytes']:,} -> "
        f"shm {shard_bytes['shared_total_bytes']:,} "
        f"({shard_bytes['reduction']:.1%} reduction over "
        f"{shard_bytes['shards']} shards)"
    )
    rows: dict[str, dict] = {}
    results = {}
    for backend in ("memory", "shm"):
        farm = dataclasses.replace(
            built.farm,
            executor="process",
            max_workers=workers,
            trace_backend=backend,
        )
        # Best-of-N: both backends run the same deterministic work, so the
        # minimum is the least-noise estimate of each path's true cost
        # (every repeat's result must still be bit-identical).
        elapsed = float("inf")
        for _ in range(max(1, repeat)):
            started = time.perf_counter()
            result = farm.run(built.jobs)
            elapsed = min(elapsed, time.perf_counter() - started)
            if backend in results:
                _assert_parity(f"process/{backend}", results[backend], result)
            results[backend] = result
        rows[backend] = {
            "seconds": round(elapsed, 3),
            "total_energy_j": result.total_energy,
        }
        print(f"  process/{backend:6s} {elapsed:8.2f} s")
    _assert_parity("process/shm", results["memory"], results["shm"])
    rows["shm"]["speedup"] = round(
        rows["memory"]["seconds"] / rows["shm"]["seconds"], 2
    )
    rows["shm"]["parity"] = True
    print(
        f"  process/shm speedup {rows['shm']['speedup']:5.2f}x over "
        "process/memory  parity=True"
    )
    return {
        "servers": built.farm.num_servers,
        "jobs": built.num_jobs,
        "duration_minutes": duration_minutes,
        "epoch_minutes": epoch_minutes,
        "workers": workers,
        "repeat": repeat,
        "shard_bytes": shard_bytes,
        "process_path": rows,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--mode",
        choices=("executor", "storage"),
        default="executor",
        help=(
            "'executor' compares serial/thread/process (PR 5 artifact); "
            "'storage' compares the process path's memory vs shm trace "
            "backends and the serialized shard bytes (PR 6 artifact)"
        ),
    )
    parser.add_argument("--duration-minutes", type=int, default=40)
    parser.add_argument("--xeon-servers", type=int, default=32)
    parser.add_argument("--atom-servers", type=int, default=32)
    parser.add_argument("--epoch-minutes", type=float, default=2.0)
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="pool size for the thread/process rows (default: CPU count)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=2.0,
        help="required process-executor speedup when the gate is active",
    )
    parser.add_argument(
        "--min-bytes-reduction",
        type=float,
        default=0.90,
        help=(
            "required serialized-shard-bytes reduction in storage mode "
            "(deterministic, so enforced regardless of --gate)"
        ),
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        help=(
            "storage mode: run each backend this many times and keep the "
            "fastest (damps scheduler noise; parity asserted on every run)"
        ),
    )
    parser.add_argument(
        "--gate",
        choices=("auto", "always", "never"),
        default="auto",
        help=(
            "when to enforce --min-speedup: 'auto' only on machines with "
            f">= {GATE_MIN_CPUS} CPUs, 'always', or 'never' (parity is "
            "always asserted regardless)"
        ),
    )
    parser.add_argument("--output", type=str, default=None, metavar="FILE")
    arguments = parser.parse_args(argv)

    cpus = os.cpu_count() or 1
    workers = arguments.workers or cpus
    enforce = arguments.gate == "always" or (
        arguments.gate == "auto" and cpus >= GATE_MIN_CPUS
    )
    sizes = dict(
        duration_minutes=arguments.duration_minutes,
        xeon_servers=arguments.xeon_servers,
        atom_servers=arguments.atom_servers,
        epoch_minutes=arguments.epoch_minutes,
        workers=workers,
        seed=arguments.seed,
    )
    if arguments.mode == "storage":
        row = bench_storage(**sizes, repeat=arguments.repeat)
        # The bytes reduction is a property of the task encoding, not of
        # the machine: enforce it everywhere.
        reduction = row["shard_bytes"]["reduction"]
        if reduction < arguments.min_bytes_reduction:
            raise SystemExit(
                f"FATAL: serialized shard-bytes reduction {reduction:.1%} "
                f"is below the required {arguments.min_bytes_reduction:.0%}"
            )
        shm_speedup = row["process_path"]["shm"]["speedup"]
        if enforce:
            gate = "enforced (shm >= memory wall-clock)"
            if shm_speedup < 1.0:
                raise SystemExit(
                    f"FATAL: process/shm ran {shm_speedup}x vs "
                    f"process/memory on a {cpus}-CPU machine"
                )
        else:
            gate = f"skipped ({cpus} CPU(s) < {GATE_MIN_CPUS})"
            print(
                f"wall-clock gate skipped: {cpus} CPU(s); recorded "
                f"{shm_speedup}x for the record"
            )
        report = {
            "benchmark": "trace-storage",
            # repro: ignore[REP001] -- report metadata stamp, not simulation input.
            "generated": date.today().isoformat(),
            "cpu_count": cpus,
            "scenario": "mega-farm",
            "parity": True,
            "bytes_reduction_gate": f">= {arguments.min_bytes_reduction:.0%}",
            "wall_clock_gate": gate,
            "results": row,
        }
    else:
        row = bench(**sizes)
        process_speedup = row["executors"]["process"]["speedup"]
        if enforce:
            gate = f"enforced (>= {arguments.min_speedup}x)"
            if process_speedup < arguments.min_speedup:
                raise SystemExit(
                    f"FATAL: process-executor speedup {process_speedup}x is "
                    f"below the required {arguments.min_speedup}x on a "
                    f"{cpus}-CPU machine"
                )
        else:
            gate = f"skipped ({cpus} CPU(s) < {GATE_MIN_CPUS})"
            print(
                f"speedup gate skipped: {cpus} CPU(s); recorded "
                f"{process_speedup}x for the record"
            )
        report = {
            "benchmark": "executor",
            # repro: ignore[REP001] -- report metadata stamp, not simulation input.
            "generated": date.today().isoformat(),
            "cpu_count": cpus,
            "scenario": "mega-farm",
            "parity": True,
            "speedup_gate": gate,
            "results": row,
        }
    if arguments.output:
        with open(arguments.output, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"wrote {arguments.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
