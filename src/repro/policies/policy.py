"""Policy objects.

Throughout the paper the word *policy* means "some combination of power
control methods such as processing speed and low-power state settings"
(Section 1).  Concretely, a policy fixes

* the DVFS frequency scaling factor ``f`` used while the server is busy, and
* the sleep behaviour when the queue empties — an ordered
  :class:`~repro.power.sleep.SleepSequence` of ``(P_i, tau_i, w_i)`` states.

:class:`Policy` bundles the two (plus a display label) and knows how to
evaluate itself against a job trace through the simulation engine, which is
the operation the policy manager performs for every candidate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError
from repro.power.platform import ServerPowerModel
from repro.power.sleep import SleepSequence, SleepStateSpec
from repro.power.states import C0I_S0I, SystemState
from repro.simulation.engine import simulate_trace
from repro.simulation.metrics import SimulationResult
from repro.simulation.service_scaling import ServiceScaling
from repro.workloads.jobs import JobTrace


@dataclass(frozen=True)
class Policy:
    """A joint (frequency, sleep sequence) power-management policy.

    Parameters
    ----------
    frequency:
        DVFS scaling factor in ``(0, 1]`` used whenever the server is busy.
    sleep:
        The low-power state sequence entered when the queue empties.
    label:
        Optional human-readable name; defaults to
        ``"f=<frequency> <sleep sequence name>"``.
    """

    frequency: float
    sleep: SleepSequence
    label: str = field(default="")

    def __post_init__(self) -> None:
        if not 0.0 < self.frequency <= 1.0:
            raise ConfigurationError(
                f"policy frequency must lie in (0, 1], got {self.frequency}"
            )
        if not self.label:
            object.__setattr__(
                self, "label", f"f={self.frequency:.2f} {self.sleep.name}"
            )

    @property
    def sleep_state_name(self) -> str:
        """Name of the sleep sequence (e.g. ``"C6S3"``), used in reports."""
        return self.sleep.name

    def with_frequency(self, frequency: float) -> "Policy":
        """A copy of this policy running at a different frequency.

        Used by the over-provisioning mechanism, which bumps the selected
        frequency by a factor ``(1 + alpha)`` while keeping the sleep
        behaviour unchanged.
        """
        return Policy(frequency=frequency, sleep=self.sleep)

    def over_provisioned(self, alpha: float) -> "Policy":
        """The policy with its frequency increased by a factor ``1 + alpha``.

        The result is clamped to the maximum scaling factor of 1.0.
        """
        if alpha < 0:
            raise ConfigurationError(
                f"over-provisioning factor must be non-negative, got {alpha}"
            )
        return self.with_frequency(min(1.0, self.frequency * (1.0 + alpha)))

    def evaluate(
        self,
        jobs: JobTrace,
        power_model: ServerPowerModel,
        scaling: ServiceScaling | None = None,
    ) -> SimulationResult:
        """Simulate this policy against *jobs* and return the metrics."""
        return simulate_trace(
            jobs=jobs,
            frequency=self.frequency,
            sleep=self.sleep,
            power_model=power_model,
            scaling=scaling,
        )

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.label


def single_state_policy(
    power_model: ServerPowerModel,
    state: SystemState,
    frequency: float,
    entry_delay: float = 0.0,
) -> Policy:
    """A policy using one low-power state entered ``entry_delay`` seconds after idling."""
    spec = power_model.sleep_state_spec(state, entry_delay, frequency)
    return Policy(frequency=frequency, sleep=SleepSequence([spec]))


def race_to_halt_policy(
    power_model: ServerPowerModel, state: SystemState
) -> Policy:
    """The paper's race-to-halt baseline: run at ``f = 1``, sleep immediately.

    Corresponds to the left-most tip of the trade-off curves of Figure 1 and
    to the R2H(C3)/R2H(C6) strategies of Figure 9.
    """
    return single_state_policy(power_model, state, frequency=1.0, entry_delay=0.0)


def dvfs_only_policy(power_model: ServerPowerModel, frequency: float) -> Policy:
    """A DVFS-only policy: no power reduction at all when the queue empties.

    The paper's DVFS-only strategy "only uses DVFS and no low-power state",
    so when idle the server keeps drawing the operating power of its current
    frequency setting.  This is modelled as a single pseudo sleep state whose
    resident power equals the active power at *frequency* and whose wake-up
    latency is zero.
    """
    spec = SleepStateSpec(
        state=C0I_S0I,
        power=power_model.active_power(frequency),
        entry_delay=0.0,
        wake_up_latency=0.0,
    )
    return Policy(
        frequency=frequency,
        sleep=SleepSequence([spec], name="no-sleep"),
        label=f"f={frequency:.2f} dvfs-only",
    )


def delayed_deep_sleep_policy(
    power_model: ServerPowerModel,
    frequency: float,
    shallow_state: SystemState,
    deep_state: SystemState,
    deep_entry_delay: float,
) -> Policy:
    """The Figure 3 policy shape: shallow state immediately, deep state after a delay.

    For example ``C0(i)S0(i) -> C6S3`` with ``tau_2 = 30 / mu``: the server
    drops into the shallow state as soon as the queue empties and falls
    through to the deep state only if it stays idle for *deep_entry_delay*
    seconds.
    """
    if deep_entry_delay <= 0:
        raise ConfigurationError(
            f"deep-state entry delay must be positive, got {deep_entry_delay}"
        )
    sequence = power_model.sleep_sequence(
        [shallow_state, deep_state], [0.0, deep_entry_delay], frequency
    )
    return Policy(frequency=frequency, sleep=sequence)
