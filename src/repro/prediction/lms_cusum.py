"""LMS + CUSUM utilisation predictor (the paper's Algorithm 2).

Section 5.2.2: "As an intermediary between naive-previous predictor and LMS
filter, LMS+CUSUM does both tracking and stationary behavior prediction ...
When the CUSUM algorithm detects an abrupt change, the look-back period p in
the LMS is reset to 1.  This resetting drops the smoothing effect of LMS and
allows the filter to track the change better.  As long as no further abrupt
change is detected, p grows until some maximum value is reached."

The implementation composes :class:`~repro.prediction.lms.LmsPredictor`
(which owns the weight vector and the shrink/grow depth operations of
Algorithm 2 lines 10 and 12) with
:class:`~repro.prediction.cusum.CusumDetector` applied to the per-minute
prediction errors (the "adaptive threshold" of line 8).
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError
from repro.prediction.base import UtilizationPredictor
from repro.prediction.cusum import CusumDetector
from repro.prediction.lms import LmsPredictor


class LmsCusumPredictor(UtilizationPredictor):
    """LMS adaptive filter whose look-back collapses on detected change points.

    Parameters
    ----------
    history:
        Maximum look-back depth ``p`` (the paper uses 10).
    step_size:
        NLMS adaptation rate, forwarded to the underlying LMS filter.
    drift, threshold:
        CUSUM allowance and alarm threshold (in standard deviations of the
        prediction error).
    initial_prediction:
        Returned before any observation is available.
    """

    name = "LC"

    def __init__(
        self,
        history: int = 10,
        step_size: float = 0.1,
        drift: float = 0.5,
        threshold: float = 3.0,
        initial_prediction: float = 0.1,
    ):
        super().__init__(initial_prediction)
        if history < 1:
            raise ConfigurationError(f"history depth must be >= 1, got {history}")
        self._lms = LmsPredictor(
            history=history, step_size=step_size, initial_prediction=initial_prediction
        )
        self._detector = CusumDetector(drift=drift, threshold=threshold)
        self._change_points: list[int] = []
        self._minute = 0

    # -- introspection -------------------------------------------------------------

    @property
    def change_points(self) -> list[int]:
        """Observation indices at which the CUSUM detector fired."""
        return list(self._change_points)

    @property
    def depth(self) -> int:
        """Current effective look-back depth of the underlying LMS filter."""
        return self._lms.depth

    # -- UtilizationPredictor interface ----------------------------------------------

    def _observe(self, utilization: float) -> None:
        # Prediction error before the LMS filter adapts to this sample.
        error = abs(utilization - self._lms.predict())
        self._lms.observe(utilization)
        alarmed = self._detector.update(error)
        # Ignore alarms until the LMS window has filled once: cold-start
        # errors are artefacts of the empty history, not workload changes.
        if alarmed and self._minute >= self._lms.history_depth:
            self._change_points.append(self._minute)
            self._lms.shrink_depth()
        else:
            self._lms.grow_depth()
        self._minute += 1

    def _predict(self) -> float:
        return self._lms.predict()

    def _reset(self) -> None:
        self._lms.reset()
        self._detector.reset()
        self._change_points.clear()
        self._minute = 0
