"""Job and job-trace containers.

The simulator (the paper's Algorithm 1) operates on a stream of jobs, each
characterised by its arrival time and its *nominal* service demand — the
time the job would take at full frequency on a CPU-bound server.  The actual
service time at a given DVFS setting is computed by the simulator through a
:class:`~repro.simulation.service_scaling.ServiceScaling` rule, so the trace
itself is frequency-independent and can be re-evaluated under many policies.

:class:`JobTrace` stores the stream as two parallel numpy arrays (arrival
times and service demands), which keeps policy evaluation — the inner loop of
SleepScale's policy manager — cheap.
"""

from __future__ import annotations

import csv
import math
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Iterator, Sequence

import numpy as np

from repro.exceptions import TraceError


def _validated_tenant_ids(
    tenant_ids: Sequence[int] | np.ndarray | None, num_jobs: int
) -> np.ndarray | None:
    """Normalise and validate per-job tenant labels (``None`` = unlabelled)."""
    if tenant_ids is None:
        return None
    labels = np.asarray(tenant_ids)
    if labels.ndim != 1:
        raise TraceError("tenant labels must be 1-D")
    if labels.size != num_jobs:
        raise TraceError(f"got {labels.size} tenant labels for {num_jobs} jobs")
    if not np.issubdtype(labels.dtype, np.integer):
        if labels.size and not np.array_equal(labels, labels.astype(np.int64)):
            raise TraceError("tenant labels must be integers")
    labels = labels.astype(np.int64, copy=False)
    if labels.size and labels.min() < 0:
        raise TraceError("tenant labels must be non-negative")
    return labels


@dataclass(frozen=True)
class Job:
    """A single job: arrival time and nominal (full-frequency) service demand.

    Both values are in seconds; ``index`` is the position in the originating
    trace, which keeps per-job results traceable back to their input.
    """

    index: int
    arrival_time: float
    service_demand: float

    def __post_init__(self) -> None:
        if self.arrival_time < 0:
            raise TraceError(f"job {self.index} has negative arrival time")
        if self.service_demand < 0:
            raise TraceError(f"job {self.index} has negative service demand")


class JobTrace:
    """An ordered stream of jobs, stored as parallel numpy arrays.

    Invariants enforced on construction:

    * arrival times are non-decreasing,
    * all arrival times and service demands are finite and non-negative,
    * the trace is non-empty — except for the explicit zero-job trace built
      by :meth:`empty`, whose supported surface is deliberately narrow (see
      that constructor's docstring).
    """

    def __init__(
        self,
        arrival_times: Sequence[float] | np.ndarray,
        service_demands: Sequence[float] | np.ndarray,
        *,
        tenant_ids: Sequence[int] | np.ndarray | None = None,
        _allow_empty: bool = False,
    ):
        arrivals = np.asarray(arrival_times, dtype=float)
        demands = np.asarray(service_demands, dtype=float)
        if arrivals.ndim != 1 or demands.ndim != 1:
            raise TraceError("arrival times and service demands must be 1-D")
        if arrivals.size == 0 and not _allow_empty:
            raise TraceError("a job trace must contain at least one job")
        if arrivals.size != demands.size:
            raise TraceError(
                f"got {arrivals.size} arrival times but {demands.size} service demands"
            )
        if not np.all(np.isfinite(arrivals)) or not np.all(np.isfinite(demands)):
            raise TraceError("arrival times and service demands must be finite")
        if np.any(arrivals < 0) or np.any(demands < 0):
            raise TraceError("arrival times and service demands must be non-negative")
        if np.any(np.diff(arrivals) < 0):
            raise TraceError("arrival times must be non-decreasing")
        self._arrivals = arrivals
        self._demands = demands
        self._tenant_ids = _validated_tenant_ids(tenant_ids, arrivals.size)

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_validated_arrays(
        cls,
        arrival_times: np.ndarray,
        service_demands: np.ndarray,
        *,
        tenant_ids: np.ndarray | None = None,
    ) -> "JobTrace":
        """Wrap arrays whose invariants are already known to hold — O(1).

        Every slice, boolean mask, or sorted fancy-index of a validated
        trace's arrays still satisfies the trace invariants (finite,
        non-negative, arrivals non-decreasing), so re-running the O(n)
        ``isfinite``/``diff`` scans on them is pure overhead — at farm scale
        the dispatcher re-scanned the entire trace once per server.  This
        trusted constructor skips the scans and only normalises dtype/shape.

        Only for arrays *derived from an already-validated trace* (or
        validated externally, e.g. by
        :func:`repro.workloads.storage.validate_trace_arrays`).  Arbitrary
        input must keep going through the validating constructor.
        """
        arrivals = np.asarray(arrival_times, dtype=float)
        demands = np.asarray(service_demands, dtype=float)
        if arrivals.ndim != 1 or demands.ndim != 1:
            raise TraceError("arrival times and service demands must be 1-D")
        if arrivals.size != demands.size:
            raise TraceError(
                f"got {arrivals.size} arrival times but {demands.size} service demands"
            )
        trace = cls.__new__(cls)
        trace._arrivals = arrivals
        trace._demands = demands
        trace._tenant_ids = (
            None if tenant_ids is None else np.asarray(tenant_ids, dtype=np.int64)
        )
        if trace._tenant_ids is not None and trace._tenant_ids.size != arrivals.size:
            raise TraceError(
                f"got {trace._tenant_ids.size} tenant labels for "
                f"{arrivals.size} jobs"
            )
        return trace

    @classmethod
    def empty(cls) -> "JobTrace":
        """A trace containing no jobs at all.

        The normal constructor rejects empty inputs because most of the
        statistics a trace answers (mean demand, offered load, time span) are
        undefined without jobs.  A zero-job trace is still a legitimate
        simulation input — an epoch in which nothing arrived — so this
        explicit constructor builds one; :func:`repro.simulation.engine.simulate_trace`
        maps it to a well-defined zero-job result.

        Supported surface of the empty trace: ``len``, iteration, equality,
        ``repr``, the array views, ``mean_service_demand`` and
        ``mean_interarrival_time`` (both ``nan``), and simulation via
        ``simulate_trace``.  Time-span accessors (``start_time``,
        ``end_time``, ``duration``) and the transformation helpers are
        undefined without jobs and raise :class:`TraceError`.
        """
        return cls(np.empty(0), np.empty(0), _allow_empty=True)

    @classmethod
    def from_interarrivals(
        cls,
        interarrival_times: Sequence[float] | np.ndarray,
        service_demands: Sequence[float] | np.ndarray,
        start_time: float = 0.0,
    ) -> "JobTrace":
        """Build a trace from inter-arrival gaps instead of absolute times.

        The first job arrives at ``start_time + interarrival_times[0]``.
        """
        gaps = np.asarray(interarrival_times, dtype=float)
        if np.any(gaps < 0):
            raise TraceError("inter-arrival times must be non-negative")
        arrivals = start_time + np.cumsum(gaps)
        return cls(arrivals, service_demands)

    @classmethod
    def from_jobs(cls, jobs: Sequence[Job]) -> "JobTrace":
        """Build a trace from a sequence of :class:`Job` objects."""
        if not jobs:
            raise TraceError("a job trace must contain at least one job")
        arrivals = [job.arrival_time for job in jobs]
        demands = [job.service_demand for job in jobs]
        return cls(arrivals, demands)

    # -- container protocol --------------------------------------------------

    def __len__(self) -> int:
        return int(self._arrivals.size)

    def __iter__(self) -> Iterator[Job]:
        for index in range(len(self)):
            yield Job(index, float(self._arrivals[index]), float(self._demands[index]))

    def __getitem__(self, index: int) -> Job:
        if not -len(self) <= index < len(self):
            raise IndexError(index)
        index = index % len(self)
        return Job(index, float(self._arrivals[index]), float(self._demands[index]))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, JobTrace):
            return NotImplemented
        if (self._tenant_ids is None) != (other._tenant_ids is None):
            return False
        if self._tenant_ids is not None and not np.array_equal(
            self._tenant_ids, other._tenant_ids
        ):
            return False
        return np.array_equal(self._arrivals, other._arrivals) and np.array_equal(
            self._demands, other._demands
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if len(self) == 0:
            return "JobTrace(empty)"
        return (
            f"JobTrace(n={len(self)}, span={self.duration:.4g}s, "
            f"mean_demand={self.mean_service_demand:.4g}s)"
        )

    # -- views and summary statistics -----------------------------------------

    @property
    def arrival_times(self) -> np.ndarray:
        """Absolute arrival times, seconds (read-only view)."""
        view = self._arrivals.view()
        view.flags.writeable = False
        return view

    @property
    def service_demands(self) -> np.ndarray:
        """Nominal (full-frequency) service demands, seconds (read-only view)."""
        view = self._demands.view()
        view.flags.writeable = False
        return view

    @property
    def tenant_ids(self) -> np.ndarray | None:
        """Per-job tenant labels (int64, read-only view), or ``None``.

        Labels are positional indices into a tenant table (see
        :class:`repro.cluster.tenancy.FarmQos`); an unlabelled trace is the
        single-tenant case.  Every transformation that preserves job
        identity (:meth:`shifted`, :meth:`scaled_interarrivals`,
        :meth:`slice_by_time`, :meth:`head`, :meth:`tail`,
        :meth:`concatenated`, dispatch and merge) preserves the labels.
        """
        if self._tenant_ids is None:
            return None
        view = self._tenant_ids.view()
        view.flags.writeable = False
        return view

    def with_tenant_ids(
        self, tenant_ids: Sequence[int] | np.ndarray | None
    ) -> "JobTrace":
        """A copy of this trace carrying *tenant_ids* (``None`` clears them)."""
        return JobTrace.from_validated_arrays(
            self._arrivals,
            self._demands,
            tenant_ids=_validated_tenant_ids(tenant_ids, len(self)),
        )

    @property
    def interarrival_times(self) -> np.ndarray:
        """Gaps between consecutive arrivals (first gap measured from time 0)."""
        return np.diff(self._arrivals, prepend=0.0)

    @property
    def start_time(self) -> float:
        """Arrival time of the first job."""
        if len(self) == 0:
            raise TraceError("an empty trace has no start time")
        return float(self._arrivals[0])

    @property
    def end_time(self) -> float:
        """Arrival time of the last job."""
        if len(self) == 0:
            raise TraceError("an empty trace has no end time")
        return float(self._arrivals[-1])

    @property
    def duration(self) -> float:
        """Time between the first and last arrival."""
        return self.end_time - self.start_time

    @property
    def mean_interarrival_time(self) -> float:
        """Average gap between consecutive arrivals (``nan`` for an empty trace)."""
        if len(self) == 0:
            return math.nan
        if len(self) == 1:
            return float(self._arrivals[0])
        return float(np.mean(np.diff(self._arrivals)))

    @property
    def mean_service_demand(self) -> float:
        """Average nominal service demand (``nan`` for an empty trace)."""
        if len(self) == 0:
            return math.nan
        return float(np.mean(self._demands))

    @property
    def offered_load(self) -> float:
        """Utilisation offered at full frequency: total demand / trace duration.

        For a single-job trace this falls back to demand divided by arrival
        time (or 1.0 if the job arrives at time zero).
        """
        span = self.end_time if len(self) == 1 else self.duration
        if span <= 0:
            return 1.0
        return float(np.sum(self._demands) / span)

    # -- transformations -------------------------------------------------------

    def _copied_tenant_ids(self) -> np.ndarray | None:
        return None if self._tenant_ids is None else self._tenant_ids.copy()

    def shifted(self, offset: float) -> "JobTrace":
        """Return a copy with every arrival time shifted by *offset* seconds."""
        shifted = self._arrivals + offset
        if np.any(shifted < 0):
            raise TraceError("shift would produce negative arrival times")
        return JobTrace(
            shifted, self._demands.copy(), tenant_ids=self._copied_tenant_ids()
        )

    def scaled_interarrivals(self, factor: float) -> "JobTrace":
        """Stretch or compress the arrival process by *factor*.

        Multiplying every inter-arrival gap by ``factor`` divides the arrival
        rate (and hence the utilisation) by the same factor.  This is the
        operation SleepScale uses to re-target a logged epoch at the
        predicted utilisation of the next epoch.
        """
        if factor <= 0 or not np.isfinite(factor):
            raise TraceError(f"inter-arrival scale factor must be positive, got {factor}")
        gaps = self.interarrival_times * factor
        trace = JobTrace.from_interarrivals(gaps, self._demands.copy())
        trace._tenant_ids = self._copied_tenant_ids()
        return trace

    def scaled_to_utilization(self, utilization: float) -> "JobTrace":
        """Rescale inter-arrival times so the offered load equals *utilization*."""
        if not 0.0 < utilization < 1.0:
            raise TraceError(
                f"target utilization must lie in (0, 1), got {utilization}"
            )
        current = self.offered_load
        if current <= 0:
            raise TraceError("cannot rescale a trace with zero offered load")
        return self.scaled_interarrivals(current / utilization)

    def slice_by_time(self, start: float, end: float) -> "JobTrace | None":
        """Jobs arriving in ``[start, end)``, re-based so the slice starts at 0.

        Returns ``None`` when no job arrives in the window, preserving the
        historical contract (predating :meth:`empty`) so callers keep a
        cheap, explicit is-there-anything check.
        """
        if end <= start:
            raise TraceError(f"invalid time window [{start}, {end})")
        mask = (self._arrivals >= start) & (self._arrivals < end)
        if not np.any(mask):
            return None
        # Masked views of validated arrays keep every invariant (start >= 0,
        # so the re-basing cannot go negative): trusted construction.
        return JobTrace.from_validated_arrays(
            self._arrivals[mask] - start,
            self._demands[mask],
            tenant_ids=None if self._tenant_ids is None else self._tenant_ids[mask],
        )

    def head(self, count: int) -> "JobTrace":
        """The first *count* jobs of the trace."""
        if count < 1:
            raise TraceError(f"head count must be >= 1, got {count}")
        count = min(count, len(self))
        return JobTrace.from_validated_arrays(
            self._arrivals[:count],
            self._demands[:count],
            tenant_ids=(
                None if self._tenant_ids is None else self._tenant_ids[:count]
            ),
        )

    def tail(self, count: int) -> "JobTrace":
        """The last *count* jobs of the trace, re-based to start at time 0.

        Unlike :meth:`head` — whose slice already starts near time 0 — a
        tail slice begins mid-trace, so its arrival times are shifted down
        by the slice's first arrival.  Without the re-basing, the huge
        leading gap would corrupt ``offered_load`` and every rescaling
        built on it (the policy manager rescales logged tails to the
        predicted utilisation).
        """
        if count < 1:
            raise TraceError(f"tail count must be >= 1, got {count}")
        count = min(count, len(self))
        arrivals = self._arrivals[-count:]
        return JobTrace.from_validated_arrays(
            arrivals - arrivals[0],
            self._demands[-count:],
            tenant_ids=(
                None if self._tenant_ids is None else self._tenant_ids[-count:]
            ),
        )

    def concatenated(self, other: "JobTrace", gap: float = 0.0) -> "JobTrace":
        """Append *other* after this trace, separated by *gap* seconds."""
        if gap < 0:
            raise TraceError(f"gap must be non-negative, got {gap}")
        offset = self.end_time + gap
        arrivals = np.concatenate([self._arrivals, other._arrivals + offset])
        demands = np.concatenate([self._demands, other._demands])
        if (self._tenant_ids is None) != (other._tenant_ids is None):
            raise TraceError(
                "cannot concatenate a tenant-labelled trace with an "
                "unlabelled one; label both (with_tenant_ids) or neither"
            )
        labels = (
            None
            if self._tenant_ids is None
            else np.concatenate([self._tenant_ids, other._tenant_ids])
        )
        return JobTrace(arrivals, demands, tenant_ids=labels)

    # -- persistence ------------------------------------------------------------

    def to_csv(self, path: str | Path) -> None:
        """Write the trace as a two-column CSV (``arrival_s, service_demand_s``).

        This is the interchange format for replaying externally collected
        job logs through the simulator (the Section 5.2.1 workflow of
        working directly with logged arrival and service times).
        """
        path = Path(path)
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["arrival_s", "service_demand_s"])
            for arrival, demand in zip(self._arrivals, self._demands, strict=True):
                writer.writerow([f"{arrival:.9f}", f"{demand:.9f}"])

    def to_file(self, path: str | Path) -> None:
        """Write the trace as a binary ``.npy`` file (lossless, mmap-able).

        The on-disk form is one ``(2, n)`` float64 array — row 0 arrival
        times, row 1 service demands — written through a memory map in
        bounded chunks, so even a trace whose arrays are themselves
        memory-mapped spills to disk without materialising.  Unlike
        :meth:`to_csv` (the human-readable interchange format, which rounds
        to nanoseconds), the round trip through :meth:`from_file` is exact.
        """
        from repro.workloads.storage import TraceBuffer

        TraceBuffer.write_file(path, self._arrivals, self._demands)

    @classmethod
    def from_file(
        cls, path: str | Path, *, mmap: bool = True, validate: bool = True
    ) -> "JobTrace":
        """Load a trace written by :meth:`to_file`.

        With ``mmap=True`` (default) the trace's arrays are read-only views
        of a :class:`numpy.memmap`, so a trace larger than RAM can stream
        through ``ServerFarm.run(chunk_jobs=...)`` — only the pages a chunk
        touches are resident.  Validation runs the usual trace invariants in
        bounded-memory chunks; pass ``validate=False`` only for files this
        process (or an equally trusted one) wrote from a validated trace.
        """
        from repro.workloads.storage import TraceBuffer

        buffer = TraceBuffer.from_file(path, mmap=mmap)
        if len(buffer) == 0:
            raise TraceError(f"{path} contains no jobs")
        if validate:
            buffer.validate()
        return buffer.as_trace()

    @classmethod
    def from_csv(cls, path: str | Path) -> "JobTrace":
        """Load a trace written by :meth:`to_csv` (or any compatible CSV)."""
        path = Path(path)
        arrivals: list[float] = []
        demands: list[float] = []
        with path.open(newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader, None)
            if header is None:
                raise TraceError(f"{path} is empty")
            for row in reader:
                if not row:
                    continue
                arrivals.append(float(row[0]))
                demands.append(float(row[1]))
        if not arrivals:
            raise TraceError(f"{path} contains no jobs")
        return cls(arrivals, demands)
