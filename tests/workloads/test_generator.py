"""Tests for job-stream generation (stationary and trace-driven)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.units import minutes
from repro.workloads.generator import (
    empirical_utilization,
    generate_jobs,
    generate_trace_driven_jobs,
    make_rng,
)
from repro.workloads.jobs import JobTrace
from repro.workloads.traces import constant_trace, step_trace


class TestGenerateJobs:
    def test_job_count(self, dns_ideal):
        jobs = generate_jobs(dns_ideal, num_jobs=500, seed=1)
        assert len(jobs) == 500

    def test_seed_reproducibility(self, dns_ideal):
        a = generate_jobs(dns_ideal, num_jobs=200, utilization=0.3, seed=5)
        b = generate_jobs(dns_ideal, num_jobs=200, utilization=0.3, seed=5)
        assert a == b

    def test_different_seeds_differ(self, dns_ideal):
        a = generate_jobs(dns_ideal, num_jobs=200, seed=1)
        b = generate_jobs(dns_ideal, num_jobs=200, seed=2)
        assert a != b

    def test_targets_requested_utilization(self, dns_ideal):
        jobs = generate_jobs(dns_ideal, num_jobs=20_000, utilization=0.4, seed=3)
        assert jobs.offered_load == pytest.approx(0.4, rel=0.05)

    def test_service_demands_match_spec_mean(self, dns_ideal):
        jobs = generate_jobs(dns_ideal, num_jobs=20_000, utilization=0.4, seed=3)
        assert jobs.mean_service_demand == pytest.approx(0.194, rel=0.05)

    def test_shared_rng_advances(self, dns_ideal):
        rng = make_rng(0)
        a = generate_jobs(dns_ideal, num_jobs=100, rng=rng)
        b = generate_jobs(dns_ideal, num_jobs=100, rng=rng)
        assert a != b

    def test_rejects_zero_jobs(self, dns_ideal):
        with pytest.raises(ConfigurationError):
            generate_jobs(dns_ideal, num_jobs=0)


class TestTraceDrivenGeneration:
    def test_flat_trace_matches_target_load(self, dns_ideal):
        trace = constant_trace(0.4, num_samples=30)
        workload = generate_trace_driven_jobs(dns_ideal, trace, seed=1)
        assert workload.jobs.offered_load == pytest.approx(0.4, rel=0.15)

    def test_step_trace_produces_more_jobs_in_busy_half(self, dns_ideal):
        trace = step_trace(0.1, 0.6, num_samples=60)
        workload = generate_trace_driven_jobs(dns_ideal, trace, seed=2)
        halfway = trace.duration / 2
        first = np.sum(workload.jobs.arrival_times < halfway)
        second = np.sum(workload.jobs.arrival_times >= halfway)
        assert second > 2 * first

    def test_arrivals_are_sorted_and_within_trace(self, dns_ideal):
        trace = constant_trace(0.3, num_samples=20)
        jobs = generate_trace_driven_jobs(dns_ideal, trace, seed=3).jobs
        assert np.all(np.diff(jobs.arrival_times) >= 0)
        assert jobs.end_time <= trace.duration

    def test_utilization_clamping(self, dns_ideal):
        trace = constant_trace(0.0, num_samples=20)
        workload = generate_trace_driven_jobs(
            dns_ideal, trace, seed=4, min_utilization=0.05
        )
        assert len(workload.jobs) > 0

    def test_invalid_clamp_rejected(self, dns_ideal):
        trace = constant_trace(0.3, num_samples=10)
        with pytest.raises(ConfigurationError):
            generate_trace_driven_jobs(
                dns_ideal, trace, min_utilization=0.5, max_utilization=0.2
            )

    def test_result_carries_inputs(self, dns_ideal):
        trace = constant_trace(0.3, num_samples=10)
        workload = generate_trace_driven_jobs(dns_ideal, trace, seed=5)
        assert workload.spec is dns_ideal
        assert workload.utilization is trace

    def test_reproducible_with_seed(self, dns_ideal):
        trace = constant_trace(0.3, num_samples=10)
        a = generate_trace_driven_jobs(dns_ideal, trace, seed=9).jobs
        b = generate_trace_driven_jobs(dns_ideal, trace, seed=9).jobs
        assert a == b


class TestEmpiricalUtilization:
    def test_flat_trace_measures_flat_utilization(self, dns_ideal):
        trace = constant_trace(0.5, num_samples=30)
        jobs = generate_trace_driven_jobs(dns_ideal, trace, seed=6).jobs
        measured = empirical_utilization(jobs, minutes(1), horizon=trace.duration)
        assert measured.size == 30
        assert float(np.mean(measured)) == pytest.approx(0.5, rel=0.15)

    def test_hand_built_trace(self):
        jobs = JobTrace([10.0, 70.0], [30.0, 6.0])
        measured = empirical_utilization(jobs, 60.0, horizon=120.0)
        assert measured[0] == pytest.approx(0.5)
        assert measured[1] == pytest.approx(0.1)

    def test_rejects_bad_interval(self, small_dns_trace):
        with pytest.raises(ConfigurationError):
            empirical_utilization(small_dns_trace, 0.0)
