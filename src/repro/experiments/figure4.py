"""Figure 4 — service-time dependency on CPU frequency matters.

For the DNS-like workload at low utilisation the paper varies how strongly
the service rate depends on the DVFS frequency: ``mu f`` (CPU-bound),
``mu f^0.5``, ``mu f^0.2`` and ``mu`` (memory-bound).  The optimal operating
frequency moves with the dependence — for memory-bound jobs slowing down
costs nothing in response time, so the lowest frequency is optimal; for
CPU-bound jobs an intermediate frequency balances cubic power against longer
busy periods.
"""

from __future__ import annotations

from repro.campaigns.spec import CampaignSpec
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.power.dvfs import frequency_grid
from repro.power.platform import xeon_power_model
from repro.power.states import C6_S3
from repro.simulation.service_scaling import ServiceScaling
from repro.simulation.sweep import sweep_frequencies
from repro.workloads.spec import workload_by_name

#: The service-rate exponents plotted in Figure 4.
FIGURE4_BETAS = (1.0, 0.5, 0.2, 0.0)


def run(
    config: ExperimentConfig | None = None,
    workload: str = "dns",
    utilization: float = 0.1,
    betas: tuple[float, ...] = FIGURE4_BETAS,
) -> ExperimentResult:
    """Sweep frequency for each CPU-boundedness exponent."""
    config = config or ExperimentConfig()
    power_model = xeon_power_model()
    spec = workload_by_name(workload, empirical=False)
    sleep = C6_S3  # frequency-independent deep state

    # Use one common frequency grid so the beta curves are directly
    # comparable point by point (a memory-bound system is stable at any
    # frequency, but we sweep the same range the CPU-bound case uses).
    frequencies = frequency_grid(utilization, step=config.sweep_frequency_step)

    rows: list[dict[str, object]] = []
    optimal_frequency: dict[float, float] = {}
    for beta in betas:
        scaling = ServiceScaling(beta=beta)
        curve = sweep_frequencies(
            spec,
            sleep,
            power_model,
            utilization=utilization,
            frequencies=frequencies,
            num_jobs=config.sweep_num_jobs,
            seed=config.seed,
            scaling=scaling,
        )
        optimal_frequency[beta] = curve.minimum_power_point().frequency
        for point in curve:
            rows.append(
                {
                    "workload": workload,
                    "beta": beta,
                    "frequency": point.frequency,
                    "normalized_mean_response_time": point.normalized_mean_response_time,
                    "average_power_w": point.average_power,
                }
            )

    notes = (
        "The power-minimising frequency should not increase as beta "
        "decreases; for memory-bound jobs (beta=0) the lowest swept "
        "frequency is optimal.",
    )
    return ExperimentResult(
        name="figure4",
        description=(
            "Effect of service-time/frequency dependence for the DNS-like "
            f"workload (rho={utilization})"
        ),
        rows=tuple(rows),
        metadata={
            "utilization": utilization,
            "betas": betas,
            "optimal_frequency_per_beta": optimal_frequency,
        },
        notes=notes,
    )


#: One cell per service-scaling exponent (each beta sweep reseeds).
CAMPAIGN = CampaignSpec(
    name="figure4",
    kind="experiment",
    target="figure4",
    description="Figure 4 service-scaling sweeps, one cell per beta",
    grid={"betas": ((1.0,), (0.5,), (0.2,), (0.0,))},
)
