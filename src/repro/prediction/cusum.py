"""Cumulative-sum (CUSUM) change-point detection.

Page's CUSUM test (Biometrika 1954) detects abrupt shifts in the mean of a
signal: two one-sided cumulative sums accumulate positive and negative
deviations beyond an allowance ``drift`` and raise an alarm when either
exceeds a ``threshold``.  The paper's LMS+CUSUM predictor uses such a test on
the utilisation signal (via the prediction errors) to decide when to drop the
LMS filter's smoothing ("if error is larger than some adaptive threshold ...
reset p = 1").

Because minute-level utilisation traces differ wildly in scale, the detector
standardises the signal with running (exponentially weighted) estimates of
its mean and standard deviation, making ``drift`` and ``threshold``
dimensionless (expressed in standard deviations).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError


@dataclass
class CusumState:
    """Internal running state of the detector (exposed for tests/inspection)."""

    mean: float = 0.0
    variance: float = 0.0
    positive_sum: float = 0.0
    negative_sum: float = 0.0
    samples: int = 0


class CusumDetector:
    """Two-sided standardised CUSUM change detector.

    Parameters
    ----------
    drift:
        Allowance ``k`` in standard deviations; deviations smaller than this
        never accumulate.  0.5 is the classical choice.
    threshold:
        Alarm threshold ``h`` in standard deviations of accumulated
        deviation; larger values mean fewer (but more confident) alarms.
    smoothing:
        Exponential forgetting factor for the running mean/variance
        estimates, in ``(0, 1)``; closer to 1 adapts faster.
    min_std:
        Lower bound on the standard-deviation estimate, protecting the
        standardisation from locking onto a perfectly flat warm-up period.
    """

    def __init__(
        self,
        drift: float = 0.5,
        threshold: float = 4.0,
        smoothing: float = 0.1,
        min_std: float = 0.01,
    ):
        if drift < 0:
            raise ConfigurationError(f"drift must be non-negative, got {drift}")
        if threshold <= 0:
            raise ConfigurationError(f"threshold must be positive, got {threshold}")
        if not 0.0 < smoothing < 1.0:
            raise ConfigurationError(
                f"smoothing must lie in (0, 1), got {smoothing}"
            )
        if min_std <= 0:
            raise ConfigurationError(f"min_std must be positive, got {min_std}")
        self._drift = drift
        self._threshold = threshold
        self._smoothing = smoothing
        self._min_std = min_std
        self._state = CusumState()

    @property
    def state(self) -> CusumState:
        """The detector's running statistics (mainly for tests)."""
        return self._state

    def reset(self) -> None:
        """Clear all running statistics and the accumulated sums."""
        self._state = CusumState()

    def _update_statistics(self, value: float) -> float:
        state = self._state
        if state.samples == 0:
            state.mean = value
            state.variance = 0.0
        else:
            alpha = self._smoothing
            delta = value - state.mean
            state.mean += alpha * delta
            state.variance = (1.0 - alpha) * (state.variance + alpha * delta * delta)
        state.samples += 1
        return max(self._min_std, state.variance**0.5)

    def update(self, value: float) -> bool:
        """Feed one sample; return ``True`` when a change is detected.

        On detection the accumulated sums are cleared (the running mean and
        variance keep adapting), so consecutive alarms require the deviation
        to build up again.
        """
        std = self._update_statistics(float(value))
        state = self._state
        standardized = (value - state.mean) / std
        state.positive_sum = max(0.0, state.positive_sum + standardized - self._drift)
        state.negative_sum = max(0.0, state.negative_sum - standardized - self._drift)
        if state.positive_sum > self._threshold or state.negative_sum > self._threshold:
            state.positive_sum = 0.0
            state.negative_sum = 0.0
            return True
        return False

    def update_many(self, values) -> list[int]:
        """Feed a whole sequence; return the indices at which alarms fired."""
        alarms = []
        for index, value in enumerate(values):
            if self.update(value):
                alarms.append(index)
        return alarms
