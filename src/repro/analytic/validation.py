"""Cross-validation between the simulator and the closed-form model.

Section 4.3 of the paper: "The results obtained from the closed-form
expressions match those presented in Figure 1."  This module automates that
check — it evaluates a set of (utilisation, frequency, sleep-state) operating
points both ways and reports the relative discrepancies, so the agreement can
be asserted in tests and reported in the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.analytic.mm1_sleep import average_power, mean_response_time
from repro.exceptions import ConfigurationError
from repro.power.platform import ServerPowerModel
from repro.power.sleep import SleepSequence
from repro.simulation.engine import simulate_workload
from repro.workloads.spec import WorkloadSpec


@dataclass(frozen=True)
class ValidationPoint:
    """Analytic-vs-simulated comparison at one operating point."""

    utilization: float
    frequency: float
    sleep_state: str
    simulated_mean_response_time: float
    analytic_mean_response_time: float
    simulated_average_power: float
    analytic_average_power: float

    @property
    def response_time_relative_error(self) -> float:
        """``|sim - analytic| / analytic`` for the mean response time."""
        return abs(
            self.simulated_mean_response_time - self.analytic_mean_response_time
        ) / self.analytic_mean_response_time

    @property
    def power_relative_error(self) -> float:
        """``|sim - analytic| / analytic`` for the average power."""
        return abs(
            self.simulated_average_power - self.analytic_average_power
        ) / self.analytic_average_power


@dataclass(frozen=True)
class ValidationReport:
    """All comparison points plus aggregate error statistics."""

    points: tuple[ValidationPoint, ...]

    def __post_init__(self) -> None:
        if not self.points:
            raise ConfigurationError("a validation report needs at least one point")

    @property
    def max_response_time_error(self) -> float:
        """Worst-case relative error on the mean response time."""
        return max(p.response_time_relative_error for p in self.points)

    @property
    def max_power_error(self) -> float:
        """Worst-case relative error on the average power."""
        return max(p.power_relative_error for p in self.points)

    @property
    def mean_response_time_error(self) -> float:
        """Average relative error on the mean response time."""
        return float(
            np.mean([p.response_time_relative_error for p in self.points])
        )

    @property
    def mean_power_error(self) -> float:
        """Average relative error on the average power."""
        return float(np.mean([p.power_relative_error for p in self.points]))

    def summary(self) -> dict[str, float]:
        """Aggregate errors as a flat dictionary for reporting."""
        return {
            "points": float(len(self.points)),
            "max_response_time_error": self.max_response_time_error,
            "mean_response_time_error": self.mean_response_time_error,
            "max_power_error": self.max_power_error,
            "mean_power_error": self.mean_power_error,
        }


def validate_against_simulation(
    spec: WorkloadSpec,
    sleep: SleepSequence,
    power_model: ServerPowerModel,
    utilizations: Sequence[float],
    frequencies: Sequence[float],
    num_jobs: int = 20_000,
    seed: int = 0,
) -> ValidationReport:
    """Compare simulated and closed-form metrics over a grid of points.

    *spec* should be an idealised (Poisson/exponential) workload — the
    closed forms assume it.  Operating points where the queue would be
    unstable (``f <= rho``) are skipped.
    """
    points: list[ValidationPoint] = []
    service_rate = spec.service_rate
    for utilization in utilizations:
        arrival_rate = utilization * service_rate
        for index, frequency in enumerate(frequencies):
            if frequency <= utilization + 1e-9:
                continue
            effective_rate = service_rate * frequency
            analytic_r = mean_response_time(arrival_rate, effective_rate, sleep)
            analytic_p = average_power(
                arrival_rate,
                effective_rate,
                sleep,
                power_model.active_power(frequency),
            )
            result = simulate_workload(
                spec,
                frequency=frequency,
                sleep=sleep,
                power_model=power_model,
                utilization=utilization,
                num_jobs=num_jobs,
                seed=seed + index,
            )
            points.append(
                ValidationPoint(
                    utilization=utilization,
                    frequency=float(frequency),
                    sleep_state=sleep.name,
                    simulated_mean_response_time=result.mean_response_time,
                    analytic_mean_response_time=analytic_r,
                    simulated_average_power=result.average_power,
                    analytic_average_power=analytic_p,
                )
            )
    return ValidationReport(points=tuple(points))
