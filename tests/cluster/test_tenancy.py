"""Unit coverage for the multi-tenant QoS surface (PR 10).

Tenant tables (:class:`TenantSpec`, :class:`FarmQos`), server
partitioning, label plumbing through every :class:`JobTrace`
transformation and through dispatch, per-tenant result rows, the
isolation metric suite, and the ``run-scenario`` report/CLI surface.
The bit-identity legs (strictest vs no qos, single-tenant dispatcher
degeneracy) live in ``test_tenancy_parity.py``.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.cluster.dispatch import LeastLoadedDispatcher, merge_streams
from repro.cluster.tenancy import (
    CompositeQosConstraint,
    FarmQos,
    PriorityDispatcher,
    TenantSpec,
    WeightedFairDispatcher,
    isolation_report,
    make_tenant_dispatcher,
    tenant_outcomes,
    tenant_partitions,
)
from repro.core.qos import (
    mean_qos_from_baseline,
    percentile_qos_from_baseline,
)
from repro.exceptions import (
    ConfigurationError,
    ExperimentError,
    ScenarioError,
    TraceError,
)
from repro.scenarios import get_scenario
from repro.workloads.jobs import JobTrace


def _mean_qos():
    return mean_qos_from_baseline(0.8)


def _two_tenants():
    return (
        TenantSpec(name="alpha", qos=_mean_qos()),
        TenantSpec(name="beta", qos=_mean_qos(), weight=2.0, priority=1),
    )


def _labelled_trace(num_jobs: int = 40, num_tenants: int = 2) -> JobTrace:
    rng = np.random.default_rng(7)
    arrivals = np.cumsum(rng.exponential(0.05, size=num_jobs))
    demands = rng.exponential(0.02, size=num_jobs)
    labels = rng.integers(0, num_tenants, size=num_jobs)
    return JobTrace(arrivals, demands, tenant_ids=labels)


class TestTenantSpec:
    def test_defaults(self):
        tenant = TenantSpec(name="web", qos=_mean_qos())
        assert tenant.weight == 1.0
        assert tenant.priority == 0

    def test_rejects_empty_name(self):
        with pytest.raises(ConfigurationError, match="name"):
            TenantSpec(name="", qos=_mean_qos())

    @pytest.mark.parametrize("weight", [0.0, -1.0, float("nan"), float("inf")])
    def test_rejects_bad_weight(self, weight):
        with pytest.raises(ConfigurationError, match="weight"):
            TenantSpec(name="web", qos=_mean_qos(), weight=weight)

    def test_rejects_non_qos(self):
        with pytest.raises(ConfigurationError, match="qos"):
            TenantSpec(name="web", qos=object())

    def test_rejects_non_integer_priority(self):
        with pytest.raises(ConfigurationError, match="priority"):
            TenantSpec(name="web", qos=_mean_qos(), priority=1.5)


class TestFarmQos:
    def test_strictest_carries_no_tenants(self):
        qos = FarmQos.strictest()
        assert not qos.is_per_tenant
        assert qos.tenants == ()
        assert qos.composite_constraint() is None
        with pytest.raises(ConfigurationError):
            FarmQos(mode="strictest", tenants=_two_tenants())

    def test_strictest_wraps_an_explicit_constraint(self):
        constraint = _mean_qos()
        assert FarmQos.strictest(constraint).composite_constraint() is constraint

    def test_per_tenant_needs_at_least_one_tenant(self):
        with pytest.raises(ConfigurationError):
            FarmQos.per_tenant()

    def test_per_tenant_rejects_duplicate_names(self):
        tenant = TenantSpec(name="web", qos=_mean_qos())
        with pytest.raises(ConfigurationError, match="unique"):
            FarmQos.per_tenant(tenant, tenant)

    def test_rejects_unknown_mode(self):
        with pytest.raises(ConfigurationError, match="mode"):
            FarmQos(mode="fair-share")

    def test_tenant_names_and_index_of(self):
        qos = FarmQos.per_tenant(*_two_tenants())
        assert qos.is_per_tenant
        assert qos.tenant_names == ("alpha", "beta")
        assert qos.index_of("beta") == 1
        with pytest.raises(ConfigurationError, match="gamma"):
            qos.index_of("gamma")

    def test_composite_constraint_joins_all_tenants(self):
        qos = FarmQos.per_tenant(*_two_tenants())
        composite = qos.composite_constraint()
        assert isinstance(composite, CompositeQosConstraint)
        description = composite.describe()
        assert "[alpha]" in description and "[beta]" in description
        assert " AND " in description


class TestTenantPartitions:
    def test_even_split_with_equal_weights(self):
        tenants = (
            TenantSpec(name="a", qos=_mean_qos()),
            TenantSpec(name="b", qos=_mean_qos()),
        )
        assert tenant_partitions(4, tenants) == ((0, 2), (2, 2))

    def test_weights_shift_the_spare_servers(self):
        tenants = (
            TenantSpec(name="a", qos=_mean_qos(), weight=3.0),
            TenantSpec(name="b", qos=_mean_qos(), weight=1.0),
        )
        assert tenant_partitions(6, tenants) == ((0, 4), (4, 2))

    def test_every_tenant_gets_a_server(self):
        tenants = (
            TenantSpec(name="a", qos=_mean_qos(), weight=100.0),
            TenantSpec(name="b", qos=_mean_qos(), weight=0.001),
        )
        assert tenant_partitions(3, tenants) == ((0, 2), (2, 1))

    def test_rejects_fewer_servers_than_tenants(self):
        with pytest.raises(ConfigurationError, match="at least one server"):
            tenant_partitions(1, _two_tenants())

    def test_rejects_zero_tenants(self):
        with pytest.raises(ConfigurationError, match="zero tenants"):
            tenant_partitions(2, ())


class TestLabelPlumbing:
    def test_labels_validated(self):
        with pytest.raises(TraceError, match="labels"):
            JobTrace([0.0, 1.0], [0.1, 0.1], tenant_ids=[0])
        with pytest.raises(TraceError, match="non-negative"):
            JobTrace([0.0, 1.0], [0.1, 0.1], tenant_ids=[0, -1])
        with pytest.raises(TraceError, match="integers"):
            JobTrace([0.0, 1.0], [0.1, 0.1], tenant_ids=[0.5, 1.0])

    def test_with_tenant_ids_round_trip(self):
        trace = JobTrace([0.0, 1.0], [0.1, 0.1])
        assert trace.tenant_ids is None
        labelled = trace.with_tenant_ids([1, 0])
        assert labelled.tenant_ids is not None
        assert labelled.tenant_ids.tolist() == [1, 0]
        assert labelled.with_tenant_ids(None).tenant_ids is None

    def test_transformations_preserve_labels(self):
        trace = _labelled_trace()
        labels = trace.tenant_ids.tolist()
        assert trace.shifted(5.0).tenant_ids.tolist() == labels
        assert trace.scaled_interarrivals(2.0).tenant_ids.tolist() == labels
        assert trace.head(10).tenant_ids.tolist() == labels[:10]
        assert trace.tail(10).tenant_ids.tolist() == labels[-10:]
        window = trace.slice_by_time(trace.start_time, trace.end_time / 2)
        assert window is not None
        assert window.tenant_ids.tolist() == labels[: len(window)]

    def test_dispatch_round_trip_preserves_labels(self):
        trace = _labelled_trace()
        streams = LeastLoadedDispatcher().dispatch(trace, 3)
        merged = merge_streams(streams)
        assert merged == trace
        assert merged.tenant_ids.tolist() == trace.tenant_ids.tolist()

    def test_merge_rejects_mixed_labelling(self):
        labelled = _labelled_trace(10)
        plain = JobTrace(labelled.arrival_times, labelled.service_demands)
        with pytest.raises(TraceError, match="labelled"):
            merge_streams([labelled, plain])

    def test_equality_sees_labels(self):
        trace = JobTrace([0.0, 1.0], [0.1, 0.1])
        assert trace.with_tenant_ids([0, 1]) != trace.with_tenant_ids([1, 0])
        assert trace.with_tenant_ids([0, 1]) != trace


class TestTenantDispatchers:
    def test_make_tenant_dispatcher_kinds(self):
        tenants = _two_tenants()
        assert isinstance(
            make_tenant_dispatcher("least-loaded", tenants), LeastLoadedDispatcher
        )
        assert isinstance(
            make_tenant_dispatcher("priority", tenants), PriorityDispatcher
        )
        assert isinstance(
            make_tenant_dispatcher("weighted-fair", tenants), WeightedFairDispatcher
        )
        with pytest.raises(ConfigurationError, match="dispatch"):
            make_tenant_dispatcher("round-robin", tenants)

    def test_with_tenants_rebuilds_the_table(self):
        dispatcher = PriorityDispatcher(_two_tenants())
        rebuilt = dispatcher.with_tenants(
            (TenantSpec(name="solo", qos=_mean_qos()),)
        )
        assert rebuilt.tenants[0].name == "solo"

    def test_weighted_fair_confines_each_tenant_to_its_block(self):
        trace = _labelled_trace(200)
        dispatcher = WeightedFairDispatcher(_two_tenants())
        assignment = dispatcher.assign(trace, 6)
        partitions = tenant_partitions(6, dispatcher.tenants)
        for tenant, (start, size) in enumerate(partitions):
            servers = assignment[np.asarray(trace.tenant_ids) == tenant]
            assert servers.min() >= start
            assert servers.max() < start + size

    def test_priority_never_pushes_the_crowd_upward(self):
        """Low-priority jobs stay at or below their own block."""
        trace = _labelled_trace(200)
        dispatcher = PriorityDispatcher(_two_tenants())
        assignment = dispatcher.assign(trace, 4)
        # beta has priority 1 > alpha's 0, so beta owns the top block and
        # alpha's block starts after it (blocks are laid out in
        # descending priority order; alpha may still overflow downward,
        # but there is nothing below it).
        partitions = tenant_partitions(
            4,
            (
                TenantSpec(name="beta", qos=_mean_qos(), weight=2.0, priority=1),
                TenantSpec(name="alpha", qos=_mean_qos()),
            ),
        )
        alpha_start = partitions[1][0]
        alpha_servers = assignment[np.asarray(trace.tenant_ids) == 0]
        assert alpha_servers.min() >= alpha_start

    def test_labelled_trace_required_when_multi_tenant(self):
        plain = JobTrace([0.0, 1.0], [0.1, 0.1])
        dispatcher = WeightedFairDispatcher(_two_tenants())
        with pytest.raises(ConfigurationError, match="label"):
            dispatcher.assign(plain, 4)


class TestTenantOutcomes:
    def test_empty_tenant_meets_vacuously(self):
        qos = FarmQos.per_tenant(*_two_tenants())
        tenant_ids = np.zeros(5, dtype=np.int64)  # all jobs belong to alpha
        response_times = np.full(5, 0.01)
        rows = tenant_outcomes(qos, tenant_ids, response_times, 0.02, 10.0)
        assert rows[0].num_jobs == 5
        assert rows[1].num_jobs == 0
        assert rows[1].meets_budget is True
        assert np.isnan(rows[1].p95)

    def test_needs_per_tenant_qos(self):
        with pytest.raises(ConfigurationError, match="per-tenant"):
            tenant_outcomes(
                FarmQos.strictest(), np.zeros(1), np.zeros(1), 0.02, 1.0
            )


@pytest.fixture(scope="module")
def noisy_results():
    """The noisy-neighbor scenario at a fast length where the flip holds."""
    results = {}
    for dispatcher in ("least-loaded", "priority", "weighted-fair"):
        built = get_scenario("noisy-neighbor").build(
            seed=9,
            duration_minutes=15,
            crowd_start_minute=4,
            crowd_minutes=11,
            dispatcher=dispatcher,
        )
        results[dispatcher] = (built, built.run())
    return results


class TestIsolationFlip:
    """The PR's acceptance gate: tenant-aware dispatch protects the victim."""

    def test_least_loaded_lets_the_crowd_violate_the_victim(self, noisy_results):
        _, result = noisy_results["least-loaded"]
        meets = result.tenant_meets_budget()
        assert meets["victim"] is False

    @pytest.mark.parametrize("dispatcher", ["priority", "weighted-fair"])
    def test_tenant_aware_dispatch_protects_the_victim(
        self, noisy_results, dispatcher
    ):
        _, result = noisy_results[dispatcher]
        assert result.tenant_meets_budget()["victim"] is True

    def test_isolation_report_attributes_the_violation(self, noisy_results):
        built, combined = noisy_results["least-loaded"]
        report_result, rows = isolation_report(built.farm, built.jobs)
        assert report_result.tenant_meets_budget() == (
            combined.tenant_meets_budget()
        )
        by_name = {row.name: row for row in rows}
        victim = by_name["victim"]
        # Alone, the lightly-loaded victim easily meets its p95 SLA; the
        # violation only appears under the shared run — the definition of
        # an interference violation.
        assert victim.meets_budget_solo is True
        assert victim.meets_budget_combined is False
        assert victim.interference_violation is True
        assert victim.p95_delta > 0

    def test_isolation_report_needs_a_per_tenant_farm(self, noisy_results):
        built, _ = noisy_results["least-loaded"]
        farm = dataclasses.replace(built.farm, qos=None)
        with pytest.raises(ConfigurationError, match="per_tenant"):
            isolation_report(farm, built.jobs)

    def test_isolation_report_needs_a_labelled_trace(self, noisy_results):
        built, _ = noisy_results["least-loaded"]
        plain = built.jobs.with_tenant_ids(None)
        with pytest.raises(ConfigurationError, match="label"):
            isolation_report(built.farm, plain)


class TestScenarioQosKnob:
    def test_build_rejects_a_non_qos(self):
        with pytest.raises(ScenarioError, match="FarmQos"):
            get_scenario("diurnal").build(qos=object(), duration_minutes=4)

    def test_build_attaches_farm_qos(self):
        qos = FarmQos.strictest()
        built = get_scenario("diurnal").build(qos=qos, duration_minutes=4)
        assert built.farm.qos is qos

    def test_bare_constraint_is_wrapped_into_strictest(self):
        constraint = percentile_qos_from_baseline(0.8, 0.01)
        built = get_scenario("diurnal").build(
            qos=constraint, duration_minutes=4
        )
        # The deprecation shim: a bare QosConstraint means "strictest".
        qos = built.farm.qos
        assert isinstance(qos, FarmQos)
        assert not qos.is_per_tenant
        assert qos.composite_constraint() is constraint

    def test_qos_is_a_reserved_parameter_name(self):
        from repro.scenarios.base import Scenario

        assert "qos" in Scenario.RESERVED_NAMES


class TestScenarioRunnerTenants:
    def test_plain_scenario_reports_an_empty_tenants_block(self):
        from repro.experiments.scenario_runner import (
            run_scenario,
            validate_report,
        )

        report = run_scenario("diurnal", overrides={"duration_minutes": 4})
        validate_report(report)
        assert report["tenants"] == {
            "mode": "none",
            "constraint": None,
            "rows": [],
            "isolation": None,
        }

    def test_per_tenant_scenario_reports_rows(self):
        from repro.experiments.scenario_runner import (
            run_scenario,
            validate_report,
        )

        report = run_scenario(
            "noisy-neighbor", overrides={"duration_minutes": 5}
        )
        validate_report(report)
        block = report["tenants"]
        assert block["mode"] == "per-tenant"
        assert [row["name"] for row in block["rows"]] == ["crowd", "victim"]
        assert sum(row["num_jobs"] for row in block["rows"]) == (
            report["workload"]["num_jobs"]
        )

    def test_tenant_override_changes_weight_and_qos(self):
        from repro.experiments.scenario_runner import (
            run_scenario,
            validate_report,
        )

        report = run_scenario(
            "noisy-neighbor",
            overrides={"duration_minutes": 5},
            tenants=["victim:qos=p99:weight=3:priority=2"],
        )
        validate_report(report)
        victim = next(
            row for row in report["tenants"]["rows"] if row["name"] == "victim"
        )
        assert victim["weight"] == 3.0
        assert victim["priority"] == 2
        assert victim["qos"].startswith("p99")

    def test_isolation_flag_fills_the_isolation_rows(self):
        from repro.experiments.scenario_runner import (
            run_scenario,
            validate_report,
        )

        report = run_scenario(
            "noisy-neighbor",
            overrides={"duration_minutes": 5},
            isolation=True,
        )
        validate_report(report)
        rows = report["tenants"]["isolation"]
        assert rows is not None
        assert {row["name"] for row in rows} == {"crowd", "victim"}

    @pytest.mark.parametrize(
        ("tenant", "match"),
        [
            ("bogus:weight=2", "unknown tenant"),
            ("victim:qos=p50", "qos"),
            ("victim", "form"),
            ("victim:weight=zero", "number"),
            ("victim:weight=0", "positive"),
            ("victim:priority=high", "integer"),
            ("victim:shares=2", "unknown tenant setting"),
        ],
    )
    def test_bad_tenant_specs_fail_loudly(self, tenant, match):
        from repro.experiments.scenario_runner import run_scenario

        with pytest.raises(ExperimentError, match=match):
            run_scenario(
                "noisy-neighbor",
                overrides={"duration_minutes": 5},
                tenants=[tenant],
            )

    def test_tenant_flags_need_a_per_tenant_scenario(self):
        from repro.experiments.scenario_runner import run_scenario

        with pytest.raises(ExperimentError, match="per-tenant"):
            run_scenario(
                "diurnal",
                overrides={"duration_minutes": 4},
                tenants=["x:weight=2"],
            )
        with pytest.raises(ExperimentError, match="per-tenant"):
            run_scenario(
                "diurnal", overrides={"duration_minutes": 4}, isolation=True
            )

    def test_qos_is_a_reserved_runner_override(self):
        from repro.experiments.scenario_runner import run_scenario

        with pytest.raises(ExperimentError, match="qos"):
            run_scenario("diurnal", overrides={"qos": "strictest"})

    def test_cli_tenant_and_isolation_flags(self, tmp_path, capsys):
        import json

        from repro.experiments.scenario_runner import main, validate_report

        output = tmp_path / "report.json"
        code = main(
            [
                "noisy-neighbor",
                "--set",
                "duration_minutes=5",
                "--tenant",
                "victim:weight=2",
                "--isolation",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        capsys.readouterr()
        report = json.loads(output.read_text())
        validate_report(report)
        victim = next(
            row for row in report["tenants"]["rows"] if row["name"] == "victim"
        )
        assert victim["weight"] == 2.0
        assert report["tenants"]["isolation"] is not None

    def test_validate_report_rejects_job_leakage(self):
        from repro.experiments.scenario_runner import (
            run_scenario,
            validate_report,
        )

        report = run_scenario(
            "noisy-neighbor", overrides={"duration_minutes": 5}
        )
        report["tenants"]["rows"][0]["num_jobs"] += 1
        with pytest.raises(ExperimentError, match="conservation"):
            validate_report(report)


class TestMulticlassPromotion:
    def test_multiclass_reports_per_class_rows(self):
        built = get_scenario("multiclass").build(seed=3, duration_minutes=5)
        result = built.run()
        rows = {row.name: row for row in result.tenant_rows()}
        assert set(rows) == {"dns", "google"}
        assert rows["dns"].num_jobs + rows["google"].num_jobs == len(built.jobs)
        # Each class is judged in absolute seconds against its own
        # service time, so the budgets differ by orders of magnitude.
        assert rows["dns"].qos_description != rows["google"].qos_description
