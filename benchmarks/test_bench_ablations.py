"""Ablation benchmarks for the design choices DESIGN.md calls out.

These are extension studies beyond the paper's figures: the sequential
throttle-back lesson, the over-provisioning guard band, closed-form versus
simulation-based policy search, the Atom platform observation, and the
multi-server scale-out sketch from the conclusion.
"""

from __future__ import annotations

import math

import pytest

from conftest import run_once
from repro.experiments import ablations


@pytest.mark.benchmark(group="ablations")
def test_bench_ablation_throttle_back(benchmark, experiment_config, record_result):
    """Lesson 5: entering every state in sequence is never better than the best single state."""
    result = run_once(benchmark, ablations.run_throttle_back, experiment_config)
    record_result(result)

    rows = {row["utilization"]: row for row in result.rows}
    # The sequential policy never beats the best single state by more than
    # statistical noise, and wastes a visible amount of power at low
    # utilisation (where it lingers in shallow states instead of going
    # straight to the optimum).
    for row in rows.values():
        assert row["sequential_overhead"] >= -0.02
    assert rows[0.1]["sequential_overhead"] > 0.05
    assert rows[0.5]["sequential_overhead"] < 0.05
    assert rows[0.1]["best_single_state"] == "C6S3"


@pytest.mark.benchmark(group="ablations")
def test_bench_ablation_over_provisioning(benchmark, experiment_config, record_result):
    """Section 5.2.3: alpha trades a little power for a lot of response time."""
    result = run_once(benchmark, ablations.run_over_provisioning, experiment_config)
    record_result(result)

    rows = sorted(result.rows, key=lambda row: row["alpha"])
    responses = [row["normalized_mean_response_time"] for row in rows]
    powers = [row["average_power_w"] for row in rows]
    frequencies = [row["mean_applied_frequency"] for row in rows]

    # Response time is non-increasing and applied frequency non-decreasing
    # in alpha; power rises only modestly (the paper: "running slightly
    # faster does not cost too much power as the server can enter low-power
    # states sooner").
    assert all(a >= b - 0.2 for a, b in zip(responses, responses[1:]))
    assert responses[0] > responses[-1]
    assert all(a <= b + 1e-6 for a, b in zip(frequencies, frequencies[1:]))
    assert powers[-1] < powers[0] * 1.25
    # The paper's headline setting meets the budget.
    paper_row = next(
        row
        for row in rows
        if math.isclose(row["alpha"], 0.35, rel_tol=0.0, abs_tol=1e-12)
    )
    assert paper_row["meets_budget"]


@pytest.mark.benchmark(group="ablations")
def test_bench_ablation_analytic_vs_simulation(
    benchmark, experiment_config, record_result
):
    """Closed-form policy search lands close to the simulation-based search."""
    result = run_once(
        benchmark, ablations.run_analytic_vs_simulation, experiment_config
    )
    record_result(result)

    rows = {row["strategy"]: row for row in result.rows}
    simulation = rows["SS(simulation)"]
    analytic = rows["SS(analytic)"]

    assert simulation["meets_budget"]
    assert analytic["meets_budget"]
    # Power within ~10% of each other and frequencies within 0.1 — the
    # idealized model picks nearly the same operating points.
    assert analytic["average_power_w"] == pytest.approx(
        simulation["average_power_w"], rel=0.10
    )
    assert abs(
        analytic["mean_selected_frequency"] - simulation["mean_selected_frequency"]
    ) < 0.1


@pytest.mark.benchmark(group="ablations")
def test_bench_ablation_atom_platform(benchmark, experiment_config, record_result):
    """Atom observation: running fast and sleeping immediately is near-optimal."""
    result = run_once(benchmark, ablations.run_atom_platform, experiment_config)
    record_result(result)

    rows = {row["platform"]: row for row in result.rows}
    # On Xeon, slowing down buys a measurable amount of power; on Atom it
    # buys essentially nothing, so race-to-halt is (near-)optimal.
    assert rows["xeon"]["race_to_halt_overhead"] > 0.03
    assert rows["atom"]["race_to_halt_overhead"] < 0.02
    assert rows["atom"]["optimal_frequency"] >= 0.9
    assert rows["atom"]["optimal_power_w"] < rows["xeon"]["optimal_power_w"]


@pytest.mark.benchmark(group="ablations")
def test_bench_ablation_server_farm(benchmark, experiment_config, record_result):
    """Scale-out: independent per-server SleepScale beats a race-to-halt farm."""
    result = run_once(benchmark, ablations.run_server_farm, experiment_config)
    record_result(result)

    rows = {row["farm"]: row for row in result.rows}
    sleepscale = rows["SleepScale farm"]
    race = rows["R2H(C6) farm"]

    assert sleepscale["meets_budget"]
    assert race["meets_budget"]
    assert sleepscale["total_average_power_w"] < race["total_average_power_w"]
    assert sleepscale["average_power_per_server_w"] < race["average_power_per_server_w"]
