"""Reproduction of *SleepScale: Runtime Joint Speed Scaling and Sleep States
Management for Power Efficient Data Centers* (Liu, Draper, Kim — ISCA 2014).

The library is organised bottom-up:

* :mod:`repro.power` — server power substrate: CPU C-states, platform
  S-states, per-component power (Table 2), DVFS and sleep-state primitives;
* :mod:`repro.workloads` — distributions, the Table 5 workload specs,
  job-stream generation and daily utilisation traces (Figure 7);
* :mod:`repro.simulation` — the FCFS queueing simulator with sleep states
  (Algorithm 1), metrics and frequency sweeps;
* :mod:`repro.analytic` — the Appendix closed forms for the M/M/1 queue with
  sleep states and M/G/1 extensions;
* :mod:`repro.policies` — policy objects and candidate policy spaces;
* :mod:`repro.prediction` — runtime utilisation predictors (naive-previous,
  LMS, LMS+CUSUM, offline oracle);
* :mod:`repro.core` — SleepScale itself: QoS constraints, the policy
  manager, the comparison strategies and the epoch-by-epoch runtime;
* :mod:`repro.cluster` — multi-server farms (homogeneous and heterogeneous)
  behind pluggable dispatchers;
* :mod:`repro.scenarios` — the registry of named, parameterised evaluation
  scenarios (``python -m repro.experiments run-scenario <name>``);
* :mod:`repro.experiments` — one module per table/figure of the paper's
  evaluation, used by the benchmark harness, plus the scenario runner.

Quickstart::

    from repro import (
        xeon_power_model, google_workload, mean_qos_from_baseline,
        sleepscale_strategy, LmsCusumPredictor, SleepScaleRuntime,
        RuntimeConfig, generate_trace_driven_jobs, synthetic_email_store_trace,
    )

    power = xeon_power_model()
    spec = google_workload()
    qos = mean_qos_from_baseline(rho_b=0.8)
    strategy = sleepscale_strategy(power, qos)
    runtime = SleepScaleRuntime(power, spec, strategy, LmsCusumPredictor(),
                                RuntimeConfig(epoch_minutes=5))
    trace = synthetic_email_store_trace(days=1)
    jobs = generate_trace_driven_jobs(spec, trace, seed=0).jobs
    result = runtime.run(jobs)
    print(result.summary())
"""

from repro.cluster import (
    ClusterRuntime,
    FarmResult,
    LeastLoadedDispatcher,
    PowerAwareDispatcher,
    RandomDispatcher,
    RoundRobinDispatcher,
    ServerFarm,
    ServerSpec,
)
from repro.concurrency import (
    EXECUTORS,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    fan_out,
    resolve_executor,
)
from repro.core import (
    SEARCH_FRONTIER,
    SEARCH_FULL,
    AnalyticPolicyManager,
    CharacterizationCache,
    EpochContext,
    EpochRecord,
    MeanResponseTimeConstraint,
    PercentileResponseTimeConstraint,
    PolicyEvaluation,
    PolicyManager,
    PolicySearchEngine,
    PolicySelection,
    QosConstraint,
    RuntimeConfig,
    RuntimeResult,
    SleepScaleRuntime,
    analytic_sleepscale_strategy,
    baseline_normalized_mean_budget,
    dvfs_only_strategy,
    figure9_strategies,
    mean_qos_from_baseline,
    percentile_qos_from_baseline,
    race_to_halt_c3,
    race_to_halt_c6,
    sleepscale_single_state_strategy,
    sleepscale_strategy,
)
from repro.policies import Policy, PolicySpace, full_space, race_to_halt_policy
from repro.power import (
    C0I_S0I,
    C1_S0I,
    C3_S0I,
    C6_S0I,
    C6_S3,
    LOW_POWER_STATES,
    DvfsModel,
    ServerPowerModel,
    SleepSequence,
    SleepStateSpec,
    SystemState,
    atom_power_model,
    xeon_power_model,
)
from repro.prediction import (
    LmsCusumPredictor,
    LmsPredictor,
    NaivePreviousPredictor,
    OraclePredictor,
    UtilizationPredictor,
)
from repro.simulation import (
    ServiceScaling,
    SimulationResult,
    cpu_bound,
    memory_bound,
    simulate_trace,
    simulate_workload,
    sweep_frequencies,
    sweep_states,
)
from repro.scenarios import (
    BuiltScenario,
    Scenario,
    ScenarioParameter,
    available_scenarios,
    get_scenario,
    register_scenario,
    scenario_catalog,
)
from repro.workloads import (
    JobTrace,
    UtilizationTrace,
    WorkloadSpec,
    dns_workload,
    generate_jobs,
    generate_trace_driven_jobs,
    google_workload,
    mail_workload,
    synthetic_email_store_trace,
    synthetic_file_server_trace,
)

__version__ = "1.0.0"

__all__ = [
    "AnalyticPolicyManager",
    "CharacterizationCache",
    "BuiltScenario",
    "C0I_S0I",
    "C1_S0I",
    "C3_S0I",
    "C6_S0I",
    "C6_S3",
    "ClusterRuntime",
    "DvfsModel",
    "EXECUTORS",
    "EpochContext",
    "Executor",
    "FarmResult",
    "EpochRecord",
    "JobTrace",
    "LOW_POWER_STATES",
    "LeastLoadedDispatcher",
    "LmsCusumPredictor",
    "LmsPredictor",
    "MeanResponseTimeConstraint",
    "NaivePreviousPredictor",
    "OraclePredictor",
    "PercentileResponseTimeConstraint",
    "Policy",
    "PolicyEvaluation",
    "PolicyManager",
    "PolicySearchEngine",
    "PolicySelection",
    "PolicySpace",
    "PowerAwareDispatcher",
    "ProcessExecutor",
    "QosConstraint",
    "RandomDispatcher",
    "RoundRobinDispatcher",
    "RuntimeConfig",
    "RuntimeResult",
    "SEARCH_FRONTIER",
    "SEARCH_FULL",
    "Scenario",
    "ScenarioParameter",
    "SerialExecutor",
    "ServerFarm",
    "ServerPowerModel",
    "ServerSpec",
    "ServiceScaling",
    "SimulationResult",
    "SleepScaleRuntime",
    "SleepSequence",
    "SleepStateSpec",
    "SystemState",
    "ThreadExecutor",
    "UtilizationPredictor",
    "UtilizationTrace",
    "WorkloadSpec",
    "analytic_sleepscale_strategy",
    "atom_power_model",
    "available_scenarios",
    "baseline_normalized_mean_budget",
    "cpu_bound",
    "dns_workload",
    "dvfs_only_strategy",
    "fan_out",
    "figure9_strategies",
    "full_space",
    "generate_jobs",
    "generate_trace_driven_jobs",
    "get_scenario",
    "google_workload",
    "mail_workload",
    "mean_qos_from_baseline",
    "memory_bound",
    "percentile_qos_from_baseline",
    "race_to_halt_c3",
    "race_to_halt_c6",
    "race_to_halt_policy",
    "register_scenario",
    "resolve_executor",
    "scenario_catalog",
    "simulate_trace",
    "simulate_workload",
    "sleepscale_single_state_strategy",
    "sleepscale_strategy",
    "sweep_frequencies",
    "sweep_states",
    "synthetic_email_store_trace",
    "synthetic_file_server_trace",
    "xeon_power_model",
    "__version__",
]
