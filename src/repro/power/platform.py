"""Whole-server power model: CPU plus platform components.

This module ties together the pieces of the power substrate:

* the per-component Table 2 numbers (:mod:`repro.power.components`),
* the state taxonomy and wake-up latencies (:mod:`repro.power.states`),
* the DVFS model (:mod:`repro.power.dvfs`),

into a single :class:`ServerPowerModel` that can answer the questions the
simulator, analytic model and policy manager ask:

* "how much power does the server draw in combined state X at frequency f?"
* "give me the ``(P_i, tau_i, w_i)`` spec for low-power state X" (to build
  :class:`~repro.power.sleep.SleepSequence` objects),
* "what is the peak (active, f=1) power P0?"

Two presets are provided: :func:`xeon_power_model` built from Table 2, and
:func:`atom_power_model` for the Atom-class sensitivity discussion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence

from repro.exceptions import ConfigurationError
from repro.power.components import (
    CPU_STATE_TO_MODE,
    ComponentInventory,
    ComponentMode,
    atom_component_inventory,
    xeon_component_inventory,
)
from repro.power.dvfs import DvfsModel
from repro.power.sleep import SleepSequence, SleepStateSpec
from repro.power.states import (
    ACTIVE,
    DEFAULT_WAKE_UP_LATENCIES,
    LOW_POWER_STATES,
    CpuState,
    PlatformState,
    SystemState,
    default_wake_up_latency,
)


@dataclass(frozen=True)
class ServerPowerModel:
    """Power model of a complete server.

    Parameters
    ----------
    inventory:
        The CPU power model and platform component inventory (Table 2).
    dvfs:
        The DVFS model mapping frequency scaling factors to power factors.
    wake_up_latencies:
        Mapping from low-power :class:`SystemState` to its average wake-up
        latency in seconds.  Defaults to the representative values the paper
        fixes in Section 4.2.
    name:
        A short identifier used in reports, e.g. ``"xeon"``.
    """

    inventory: ComponentInventory
    dvfs: DvfsModel = field(default_factory=DvfsModel)
    wake_up_latencies: Mapping[SystemState, float] = field(
        default_factory=lambda: dict(DEFAULT_WAKE_UP_LATENCIES)
    )
    name: str = "server"

    def __post_init__(self) -> None:
        for state, latency in self.wake_up_latencies.items():
            if latency < 0:
                raise ConfigurationError(
                    f"wake-up latency for {state.name} must be non-negative, "
                    f"got {latency}"
                )

    # ------------------------------------------------------------------
    # Power queries
    # ------------------------------------------------------------------

    def cpu_power(self, state: CpuState, frequency: float = 1.0) -> float:
        """CPU power (watts) in *state* at DVFS factor *frequency*."""
        return self.inventory.cpu.power(state, frequency)

    def platform_power(self, state: PlatformState, cpu_state: CpuState) -> float:
        """Platform (non-CPU) power (watts) for the given platform/CPU states.

        When the platform is in ``S0`` the component mode follows the CPU
        state's column of Table 2 (operating for ``C0(a)``, idle-like
        otherwise).  When the platform is in ``S3`` all components are in the
        deeper-sleep column.
        """
        if state is PlatformState.S3:
            return self.inventory.platform_power(ComponentMode.DEEPER_SLEEP)
        if state is PlatformState.S0_ACTIVE:
            return self.inventory.platform_power(ComponentMode.OPERATING)
        # S0(i): platform components sit in the column matching the CPU state
        # but never deeper than "deep sleep" because RAM etc. stay powered.
        mode = CPU_STATE_TO_MODE[cpu_state]
        if mode is ComponentMode.DEEPER_SLEEP:
            mode = ComponentMode.DEEP_SLEEP
        if mode is ComponentMode.OPERATING:
            mode = ComponentMode.IDLE
        return self.inventory.platform_power(mode)

    def system_power(self, state: SystemState, frequency: float = 1.0) -> float:
        """Total server power (watts) in combined *state* at *frequency*."""
        return self.cpu_power(state.cpu, frequency) + self.platform_power(
            state.platform, state.cpu
        )

    def active_power(self, frequency: float = 1.0) -> float:
        """Power while actively serving jobs at DVFS factor *frequency*.

        This is the paper's ``P0 * f**3`` CPU term plus the active platform
        power; at ``frequency=1`` it is the peak power ``P0`` plus platform.
        """
        return self.system_power(ACTIVE, frequency)

    def peak_power(self) -> float:
        """Active power at full frequency (the most the server can draw)."""
        return self.active_power(1.0)

    def idle_power(self, frequency: float = 1.0) -> float:
        """Power in the operating-idle state ``C0(i)S0(i)`` at *frequency*."""
        return self.system_power(
            SystemState(CpuState.C0_IDLE, PlatformState.S0_IDLE), frequency
        )

    # ------------------------------------------------------------------
    # Wake-up latencies and sleep-state specs
    # ------------------------------------------------------------------

    def wake_up_latency(self, state: SystemState) -> float:
        """Average wake-up latency (seconds) from low-power *state*."""
        if state in self.wake_up_latencies:
            return float(self.wake_up_latencies[state])
        return default_wake_up_latency(state)

    def sleep_state_spec(
        self,
        state: SystemState,
        entry_delay: float = 0.0,
        frequency: float = 1.0,
    ) -> SleepStateSpec:
        """Build the ``(P_i, tau_i, w_i)`` tuple for low-power *state*.

        The resident power of ``C0(i)S0(i)`` and ``C1S0(i)`` depends on the
        DVFS setting left in place when the server idles (the paper holds
        voltage and frequency at the last DVFS setting in ``C0(i)``), hence
        the *frequency* argument; deeper states are frequency-independent.
        """
        if state.is_active:
            raise ConfigurationError(
                "cannot build a sleep-state spec for the active state"
            )
        return SleepStateSpec(
            state=state,
            power=self.system_power(state, frequency),
            entry_delay=entry_delay,
            wake_up_latency=self.wake_up_latency(state),
        )

    def immediate_sleep_sequence(
        self, state: SystemState, frequency: float = 1.0
    ) -> SleepSequence:
        """Single-state sequence entered as soon as the queue empties."""
        return SleepSequence([self.sleep_state_spec(state, 0.0, frequency)])

    def sleep_sequence(
        self,
        states: Sequence[SystemState],
        entry_delays: Sequence[float],
        frequency: float = 1.0,
    ) -> SleepSequence:
        """Multi-state sequence with explicit entry delays ``tau_i``."""
        if len(states) != len(entry_delays):
            raise ConfigurationError(
                f"got {len(states)} states but {len(entry_delays)} entry delays"
            )
        specs = [
            self.sleep_state_spec(state, delay, frequency)
            for state, delay in zip(states, entry_delays, strict=True)
        ]
        return SleepSequence(specs)

    def full_throttle_back_sequence(
        self, entry_delays: Sequence[float], frequency: float = 1.0
    ) -> SleepSequence:
        """The paper's "sequential power throttle-back": all five states in order.

        ``entry_delays`` gives the ``tau_i`` for
        ``C0(i)S0(i), C1S0(i), C3S0(i), C6S0(i), C6S3`` in that order.
        """
        return self.sleep_sequence(list(LOW_POWER_STATES), entry_delays, frequency)

    def low_power_state_table(self, frequency: float = 1.0) -> dict[str, dict[str, float]]:
        """Summary of each low-power state: power and wake-up latency.

        Used by reports and the Table 2 / Table 4 benchmarks.
        """
        table: dict[str, dict[str, float]] = {}
        for state in LOW_POWER_STATES:
            table[state.name] = {
                "power_w": self.system_power(state, frequency),
                "wake_up_latency_s": self.wake_up_latency(state),
            }
        return table


def xeon_power_model(
    dvfs: DvfsModel | None = None,
    wake_up_latencies: Mapping[SystemState, float] | None = None,
) -> ServerPowerModel:
    """The Xeon-class server of Table 2 with the paper's default latencies."""
    return ServerPowerModel(
        inventory=xeon_component_inventory(),
        dvfs=dvfs or DvfsModel(),
        wake_up_latencies=dict(wake_up_latencies or DEFAULT_WAKE_UP_LATENCIES),
        name="xeon",
    )


def atom_power_model(
    dvfs: DvfsModel | None = None,
    wake_up_latencies: Mapping[SystemState, float] | None = None,
) -> ServerPowerModel:
    """An Atom-class low-power server (see DESIGN.md substitution #3)."""
    return ServerPowerModel(
        inventory=atom_component_inventory(),
        dvfs=dvfs or DvfsModel(),
        wake_up_latencies=dict(wake_up_latencies or DEFAULT_WAKE_UP_LATENCIES),
        name="atom",
    )
