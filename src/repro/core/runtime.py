"""The SleepScale runtime controller (Section 5.2 and Section 6).

The controller ties everything together and is what the paper's evaluation
actually runs: a job stream generated from a daily utilisation trace is
consumed epoch by epoch; at the start of each ``T``-minute epoch the
controller

1. asks the utilisation predictor for the upcoming epoch's utilisation
   (minute-granularity prediction, Section 5.2.2),
2. asks the strategy (SleepScale or one of the baselines) for the policy to
   run — SleepScale rescales the job log of recent epochs to the predicted
   utilisation and simulates every candidate policy (Section 5.2.1),
3. applies dynamic frequency over-provisioning: if the previous epoch's mean
   delay was *below* the baseline budget, the selected frequency is bumped
   by a factor ``1 + alpha`` as a guard band against utilisation surges
   (Section 5.2.3),
4. runs the epoch's actual jobs under the chosen policy, carrying any
   unfinished backlog into the next epoch, and
5. feeds the observed per-minute utilisations of the epoch back into the
   predictor.

The result is a :class:`~repro.core.epoch.RuntimeResult` containing every
epoch record plus run-wide response-time and power metrics — the quantities
Figures 8, 9 and 10 report.

Incremental epoch feeding
-------------------------

The epoch loop lives in :class:`RuntimeSession`, which consumes the arrival
stream in arrival-ordered chunks: :meth:`RuntimeSession.feed` buffers jobs
and runs every epoch whose inputs are complete, :meth:`RuntimeSession.finish`
flushes the rest and assembles the :class:`~repro.core.epoch.RuntimeResult`.
:meth:`SleepScaleRuntime.run` is literally ``stream() -> feed(all jobs) ->
finish()``, so the one-shot and streamed paths cannot drift apart — a trace
fed in chunks produces the same result as the same trace fed whole (pinned
by ``tests/core/test_runtime_stream.py``).  Chunked farm runs
(:meth:`repro.cluster.farm.ServerFarm.run` with ``chunk_jobs``) rely on this
to simulate million-job traces without materialising every per-server
stream up front.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.core.epoch import EpochRecord, RuntimeResult
from repro.core.qos import baseline_mean_response_budget, baseline_normalized_mean_budget
from repro.core.strategies import EpochContext, PowerManagementStrategy
from repro.exceptions import ConfigurationError, TraceError
from repro.policies.policy import Policy
from repro.power.platform import ServerPowerModel
from repro.prediction.base import UtilizationPredictor
from repro.simulation.engine import simulate_trace
from repro.simulation.service_scaling import ServiceScaling, cpu_bound
from repro.units import minutes
from repro.workloads.jobs import JobTrace
from repro.workloads.spec import WorkloadSpec


@dataclass(frozen=True)
class RuntimeConfig:
    """Tunable parameters of the runtime controller.

    Parameters
    ----------
    epoch_minutes:
        Policy update interval ``T`` in minutes (the paper sweeps 1–10 and
        uses 5 for the headline comparison).
    rho_b:
        Peak design utilisation that defines the baseline QoS.
    over_provisioning:
        The guard-band factor ``alpha``; 0 disables over-provisioning
        (Figure 8), 0.35 is the paper's headline setting (Figure 9).
    log_epochs:
        How many past epochs of logged jobs the policy manager characterises
        against (older epochs are dropped).
    observation_minutes:
        Granularity of the utilisation observations fed to the predictor
        (one minute in the paper).
    min_utilization:
        Floor applied to predictions before they reach the policy search, so
        a predicted utilisation of exactly zero cannot produce an empty
        candidate space.
    """

    epoch_minutes: float = 5.0
    rho_b: float = 0.8
    over_provisioning: float = 0.35
    log_epochs: int = 2
    observation_minutes: float = 1.0
    min_utilization: float = 0.02

    def __post_init__(self) -> None:
        if self.epoch_minutes <= 0:
            raise ConfigurationError("epoch_minutes must be positive")
        if not 0.0 < self.rho_b < 1.0:
            raise ConfigurationError("rho_b must lie in (0, 1)")
        if self.over_provisioning < 0:
            raise ConfigurationError("over_provisioning must be non-negative")
        if self.log_epochs < 0:
            raise ConfigurationError("log_epochs must be non-negative")
        if self.observation_minutes <= 0:
            raise ConfigurationError("observation_minutes must be positive")
        if not 0.0 < self.min_utilization < 1.0:
            raise ConfigurationError("min_utilization must lie in (0, 1)")

    @property
    def epoch_seconds(self) -> float:
        """Epoch length in seconds."""
        return minutes(self.epoch_minutes)

    @property
    def observation_seconds(self) -> float:
        """Observation granularity in seconds."""
        return minutes(self.observation_minutes)


class RuntimeSession:
    """One in-progress run of the epoch loop, fed in arrival-ordered chunks.

    Create via :meth:`SleepScaleRuntime.stream`.  ``feed`` accepts either a
    :class:`~repro.workloads.jobs.JobTrace` or a pair of arrays (absolute
    arrival times and nominal demands); chunks must arrive in global time
    order.  An epoch is executed as soon as every input it depends on — its
    job slice and its observation windows — is known to be complete, so the
    session only ever buffers the jobs of the epochs still in flight plus
    the trailing ``log_epochs`` epochs kept for characterisation.
    """

    def __init__(self, runtime: "SleepScaleRuntime"):
        self._runtime = runtime
        config = runtime.config
        self._epoch_seconds = config.epoch_seconds
        self._interval = config.observation_seconds
        self._observations_per_epoch = max(
            1, int(round(self._epoch_seconds / self._interval))
        )
        self._mean_service_time = runtime._spec.mean_service_time
        self._baseline_delay = baseline_mean_response_budget(
            config.rho_b, self._mean_service_time
        )
        self._budget = baseline_normalized_mean_budget(config.rho_b)
        runtime._predictor.reset()

        # Epoch-loop state (mirrors the historical one-shot loop exactly).
        self._epoch_records: list[EpochRecord] = []
        self._all_response_times: list[np.ndarray] = []
        self._total_energy = 0.0
        self._carryover_busy_until = 0.0
        self._previous_epoch_mean_delay: float | None = None
        self._next_epoch = 0

        # Input buffers.
        self._pending_arrivals: list[np.ndarray] = []
        self._pending_demands: list[np.ndarray] = []
        self._recent_epochs: deque[tuple[np.ndarray, np.ndarray]] = deque(
            maxlen=max(1, config.log_epochs)
        )
        self._window_totals = np.zeros(0)
        self._last_arrival: float | None = None
        self._finished = False

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------

    def feed(
        self,
        jobs: JobTrace | np.ndarray,
        service_demands: np.ndarray | None = None,
    ) -> None:
        """Append one arrival-ordered chunk and run every completed epoch."""
        if self._finished:
            raise ConfigurationError("cannot feed a finished runtime session")
        if isinstance(jobs, JobTrace):
            arrivals, demands = jobs.arrival_times, jobs.service_demands
        else:
            if service_demands is None:
                raise ConfigurationError(
                    "feeding raw arrays requires both arrival times and demands"
                )
            arrivals = np.asarray(jobs, dtype=float)
            demands = np.asarray(service_demands, dtype=float)
            if arrivals.shape != demands.shape or arrivals.ndim != 1:
                raise TraceError(
                    "arrival times and service demands must be matching 1-D arrays"
                )
            if arrivals.size and (
                not np.all(np.isfinite(arrivals))
                or not np.all(np.isfinite(demands))
                or np.any(arrivals < 0)
                or np.any(demands < 0)
                or np.any(np.diff(arrivals) < 0)
            ):
                raise TraceError(
                    "chunk arrival times/demands must be finite, non-negative "
                    "and arrival-ordered"
                )
        if arrivals.size == 0:
            return
        if self._last_arrival is not None and arrivals[0] < self._last_arrival:
            raise TraceError(
                "chunks must be fed in global arrival order; got an arrival "
                f"at {arrivals[0]} after one at {self._last_arrival}"
            )
        self._last_arrival = float(arrivals[-1])

        # Accumulate observation-window demand totals exactly like the
        # one-shot np.add.at (same addition order: arrival order).
        indices = (arrivals // self._interval).astype(int)
        needed = int(indices[-1]) + 1
        if needed > self._window_totals.size:
            grown = np.zeros(max(needed, 2 * self._window_totals.size))
            grown[: self._window_totals.size] = self._window_totals
            self._window_totals = grown
        np.add.at(self._window_totals, indices, demands)

        self._pending_arrivals.append(arrivals)
        self._pending_demands.append(demands)

        # Run every epoch whose jobs and observation windows are complete.
        # The strict inequality keeps a job arriving exactly on a boundary
        # pending until a later arrival (or finish) resolves which epoch —
        # and which observation window — it belongs to.
        while True:
            epoch = self._next_epoch
            complete_before = max(
                (epoch + 1) * self._epoch_seconds,
                (epoch + 1) * self._observations_per_epoch * self._interval,
            )
            if self._last_arrival <= complete_before:
                break
            self._run_epoch(epoch, num_windows=None)

    # ------------------------------------------------------------------
    # Epoch execution
    # ------------------------------------------------------------------

    def _pop_jobs_before(self, end: float) -> tuple[np.ndarray, np.ndarray]:
        """Consume every buffered job with arrival time strictly below *end*."""
        arrivals: list[np.ndarray] = []
        demands: list[np.ndarray] = []
        while self._pending_arrivals:
            block = self._pending_arrivals[0]
            if block[-1] < end:
                arrivals.append(self._pending_arrivals.pop(0))
                demands.append(self._pending_demands.pop(0))
                continue
            split = int(np.searchsorted(block, end, side="left"))
            if split > 0:
                arrivals.append(block[:split])
                demands.append(self._pending_demands[0][:split])
                self._pending_arrivals[0] = block[split:]
                self._pending_demands[0] = self._pending_demands[0][split:]
            break
        if not arrivals:
            empty = np.empty(0)
            return empty, empty
        return np.concatenate(arrivals), np.concatenate(demands)

    def _log_window_trace(self, epoch_index: int) -> JobTrace | None:
        """The job log of the most recent ``log_epochs`` epochs (if any)."""
        log_epochs = self._runtime.config.log_epochs
        if log_epochs == 0 or epoch_index == 0:
            return None
        recent = list(self._recent_epochs)[-log_epochs:]
        arrivals = [block for block, _ in recent if block.size]
        demands = [block for _, block in recent if block.size]
        if not arrivals:
            return None
        return JobTrace(np.concatenate(arrivals), np.concatenate(demands))

    def _run_epoch(self, epoch_index: int, num_windows: int | None) -> None:
        """Execute one epoch — the exact historical loop body."""
        runtime = self._runtime
        config = runtime.config
        epoch_seconds = self._epoch_seconds
        epoch_start = epoch_index * epoch_seconds
        epoch_end = epoch_start + epoch_seconds

        if runtime._predictor.observation_count == 0:
            # No history yet: be conservative and provision for the peak
            # design utilisation rather than trusting a cold predictor.
            predicted = config.rho_b
        else:
            predicted = max(runtime._predictor.predict(), config.min_utilization)
        context = EpochContext(
            predicted_utilization=min(predicted, 0.98),
            spec=runtime._spec,
            logged_jobs=self._log_window_trace(epoch_index),
        )
        selected_policy = runtime._strategy.select_policy(context)

        over_provisioned = False
        applied_policy = selected_policy
        if (
            config.over_provisioning > 0
            and self._previous_epoch_mean_delay is not None
            and self._previous_epoch_mean_delay < self._baseline_delay
        ):
            applied_policy = selected_policy.over_provisioned(
                config.over_provisioning
            )
            over_provisioned = True

        epoch_arrivals, epoch_demands = self._pop_jobs_before(epoch_end)
        low = epoch_index * self._observations_per_epoch
        high = (epoch_index + 1) * self._observations_per_epoch
        if num_windows is not None:
            high = min(high, num_windows)
        observed_slice = np.clip(
            self._window_totals[low:high] / self._interval, 0.0, 1.0
        )
        observed_mean = float(np.mean(observed_slice)) if observed_slice.size else 0.0

        if epoch_arrivals.size == 0:
            # No arrivals at all: the server just walks its sleep sequence
            # (or finishes leftover backlog) for the whole epoch.
            idle_start = max(epoch_start, self._carryover_busy_until)
            idle_energy = runtime._trailing_idle_energy(
                applied_policy, epoch_end - idle_start
            )
            self._total_energy += idle_energy
            self._epoch_records.append(
                EpochRecord(
                    index=epoch_index,
                    start_time=epoch_start,
                    duration=epoch_seconds,
                    predicted_utilization=predicted,
                    observed_utilization=observed_mean,
                    policy_label=applied_policy.label,
                    sleep_state=applied_policy.sleep_state_name,
                    selected_frequency=selected_policy.frequency,
                    applied_frequency=applied_policy.frequency,
                    over_provisioned=over_provisioned,
                    num_jobs=0,
                    mean_response_time=math.nan,
                    p95_response_time=math.nan,
                    energy_joules=idle_energy,
                )
            )
            # A zero-arrival epoch produces no delay evidence at all (its
            # recorded mean response time is NaN): carry the previous
            # epoch's mean delay forward unchanged.  Forcing it to 0.0 here
            # unconditionally armed the over-provisioning guard band for
            # the next epoch — even when the last observed delay was
            # *above* the baseline budget — so quiet periods silently
            # switched the controller into permanent over-provisioning.
            self._carryover_busy_until = max(
                self._carryover_busy_until, epoch_start
            )
        else:
            epoch_jobs = JobTrace(epoch_arrivals, epoch_demands)
            result = simulate_trace(
                jobs=epoch_jobs,
                frequency=applied_policy.frequency,
                sleep=applied_policy.sleep,
                power_model=runtime._power_model,
                scaling=runtime._scaling,
                start_time=epoch_start,
                busy_until=max(epoch_start, self._carryover_busy_until),
            )
            last_departure = epoch_start + result.horizon
            self._carryover_busy_until = last_departure
            trailing_idle = max(0.0, epoch_end - last_departure)
            trailing_energy = runtime._trailing_idle_energy(
                applied_policy, trailing_idle
            )
            epoch_energy = result.total_energy + trailing_energy
            self._total_energy += epoch_energy
            self._all_response_times.append(result.response_times)
            self._epoch_records.append(
                EpochRecord(
                    index=epoch_index,
                    start_time=epoch_start,
                    duration=epoch_seconds,
                    predicted_utilization=predicted,
                    observed_utilization=observed_mean,
                    policy_label=applied_policy.label,
                    sleep_state=applied_policy.sleep_state_name,
                    selected_frequency=selected_policy.frequency,
                    applied_frequency=applied_policy.frequency,
                    over_provisioned=over_provisioned,
                    num_jobs=result.num_jobs,
                    mean_response_time=result.mean_response_time,
                    p95_response_time=result.response_time_percentile(95.0),
                    energy_joules=epoch_energy,
                )
            )
            self._previous_epoch_mean_delay = result.mean_response_time

        # Reveal the epoch's observed per-minute utilisations.
        runtime._predictor.observe_many(observed_slice)
        self._recent_epochs.append((epoch_arrivals, epoch_demands))
        self._next_epoch = epoch_index + 1

    # ------------------------------------------------------------------
    # Finishing
    # ------------------------------------------------------------------

    def finish(self, horizon: float | None = None) -> RuntimeResult:
        """Flush the remaining epochs and assemble the run-wide result.

        *horizon* extends the observation window beyond the last arrival (at
        least one epoch is always run), exactly as in
        :meth:`SleepScaleRuntime.run`.
        """
        if self._finished:
            raise ConfigurationError("runtime session already finished")
        config = self._runtime.config
        epoch_seconds = self._epoch_seconds
        end_time = self._last_arrival if self._last_arrival is not None else 0.0
        if horizon is not None:
            end_time = max(end_time, horizon)
        num_epochs = max(1, int(math.ceil(end_time / epoch_seconds)))
        run_horizon = num_epochs * epoch_seconds
        num_windows = int(math.ceil(run_horizon / self._interval))

        if self._window_totals.size < num_windows:
            grown = np.zeros(num_windows)
            grown[: self._window_totals.size] = self._window_totals
            self._window_totals = grown
        elif self._window_totals.size > num_windows:
            # Jobs arriving exactly at the run horizon land past the last
            # window; the one-shot accounting clamps them into it.
            overflow = float(np.sum(self._window_totals[num_windows:]))
            if overflow:
                self._window_totals[num_windows - 1] += overflow
                self._window_totals[num_windows:] = 0.0

        for epoch_index in range(self._next_epoch, num_epochs):
            self._run_epoch(epoch_index, num_windows=num_windows)

        self._finished = True
        total_duration = max(run_horizon, self._carryover_busy_until)
        response_times = (
            np.concatenate(self._all_response_times)
            if self._all_response_times
            else np.array([], dtype=float)
        )
        # Drop the per-epoch fragments: a finished session may outlive the
        # concatenation (the farm keeps sessions alive while it assembles
        # results), and holding both doubles peak memory on streaming runs.
        self._all_response_times = []
        return RuntimeResult(
            strategy=self._runtime._strategy.name,
            predictor=self._runtime._predictor.name,
            epochs=tuple(self._epoch_records),
            response_times=response_times,
            total_energy=self._total_energy,
            total_duration=total_duration,
            mean_service_time=self._mean_service_time,
            response_time_budget=self._budget,
            extra={
                "epoch_minutes": config.epoch_minutes,
                "rho_b": config.rho_b,
                "over_provisioning": config.over_provisioning,
                # Policy-search mode of the strategy, for report provenance
                # (fixed-policy strategies have no search and report "full").
                "search": getattr(self._runtime._strategy, "search", "full"),
            },
        )


class SleepScaleRuntime:
    """Epoch-by-epoch controller running one strategy over one job stream."""

    def __init__(
        self,
        power_model: ServerPowerModel,
        spec: WorkloadSpec,
        strategy: PowerManagementStrategy,
        predictor: UtilizationPredictor,
        config: RuntimeConfig | None = None,
        scaling: ServiceScaling | None = None,
    ):
        self._power_model = power_model
        self._spec = spec
        self._strategy = strategy
        self._predictor = predictor
        self._config = config or RuntimeConfig()
        self._scaling = scaling or cpu_bound()

    @property
    def config(self) -> RuntimeConfig:
        """The runtime configuration in force."""
        return self._config

    def _trailing_idle_energy(
        self, policy: Policy, idle_duration: float
    ) -> float:
        """Energy of an idle stretch under *policy*'s sleep sequence."""
        if idle_duration <= 0:
            return 0.0
        pre_sleep_power = self._power_model.idle_power(policy.frequency)
        return policy.sleep.idle_energy(idle_duration, pre_sleep_power)

    # ------------------------------------------------------------------
    # Main entry points
    # ------------------------------------------------------------------

    def stream(self) -> RuntimeSession:
        """Start an incremental run; feed chunks, then ``finish()``.

        Starting a session resets the predictor, exactly as :meth:`run`
        does; one runtime can therefore be streamed (or run) repeatedly,
        but only one session should be active at a time because strategy
        and predictor state are owned by the runtime.
        """
        return RuntimeSession(self)

    def run(self, jobs: JobTrace, horizon: float | None = None) -> RuntimeResult:
        """Run the strategy over the whole job stream and aggregate the results.

        *jobs* must use absolute arrival times starting near zero (as
        produced by :func:`repro.workloads.generator.generate_trace_driven_jobs`).

        *horizon* extends the observation window beyond the last arrival (at
        least one epoch is always run).  It also makes a zero-job stream
        (:meth:`JobTrace.empty`) a valid input: the controller then walks its
        selected policies' sleep sequences for the whole window — how a farm
        accounts for a server that received no traffic but still burns power.

        ``run`` is exactly ``stream()`` + one ``feed`` + ``finish``; the
        one-shot and chunked paths share every line of the epoch loop.
        """
        session = self.stream()
        if len(jobs) > 0:
            session.feed(jobs)
        return session.finish(horizon=horizon)
