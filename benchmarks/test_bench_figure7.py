"""Benchmark reproducing Figure 7: the daily utilisation traces."""

from __future__ import annotations

import pytest

from conftest import run_once
from repro.experiments import figure7


@pytest.mark.benchmark(group="figures")
def test_bench_figure7_daily_traces(benchmark, experiment_config, record_result):
    result = run_once(benchmark, figure7.run, experiment_config)
    record_result(result)

    summaries = result.metadata["summaries"]

    # File server: low utilisation (below ~0.2) with small variance.
    file_server = summaries["file-server"]
    assert file_server["max"] <= 0.2
    assert file_server["std"] < 0.08

    # Email store: spans roughly 0.1 to 0.9 across the day.
    email_store = summaries["email-store"]
    assert email_store["min"] < 0.2
    assert email_store["max"] > 0.7
    assert email_store["std"] > 0.1

    # Diurnal pattern: the afternoon peak clearly exceeds the small hours,
    # and the late-evening back-up window is busier than the early morning.
    email_rows = {row["hour_of_day"]: row["mean_utilization"] for row in result.filtered(trace="email-store")}
    assert email_rows[14] > email_rows[4] + 0.2
    assert email_rows[22] > email_rows[4]

    # The file server has no comparable swing.
    file_rows = {row["hour_of_day"]: row["mean_utilization"] for row in result.filtered(trace="file-server")}
    assert max(file_rows.values()) - min(file_rows.values()) < 0.15
