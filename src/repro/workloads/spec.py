"""Workload specifications (Table 5 of the paper).

A :class:`WorkloadSpec` bundles the inter-arrival and service-time
distributions of one workload class together with a human-readable name and
the CPU-boundedness exponent used by the service-time scaling rule.

Table 5 of the paper lists the summary statistics of three BigHouse
workloads.  Two presets are referenced throughout the evaluation:

* **DNS-like** — large jobs, ``1/mu = 194 ms``, Cv ≈ 1.0 for both service and
  inter-arrival times;
* **Google-like** — small web-search jobs, ``1/mu = 4.2 ms``, service Cv 1.1,
  inter-arrival Cv 1.2;

plus a **Mail** workload (92 ms, service Cv 3.6) that exercises the
heavy-tailed regime.  Because the BigHouse CDFs themselves are not available,
each spec can produce either its *idealised* variant (Poisson arrivals and
exponential service, matching only the means — the model of Section 4) or its
*empirical* variant (moment-matched distributions that also reproduce the Cv
values — standing in for the BigHouse statistics of Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.exceptions import ConfigurationError
from repro.units import milliseconds, microseconds, seconds
from repro.workloads.distributions import Distribution, Exponential, from_mean_cv


@dataclass(frozen=True)
class WorkloadSpec:
    """Statistical description of one workload class.

    Parameters
    ----------
    name:
        Identifier used in reports, e.g. ``"dns"``.
    interarrival:
        Distribution of the time between consecutive job arrivals at the
        *nominal* utilisation implied by the workload statistics.
    service:
        Distribution of the nominal (full-frequency) per-job service demand.
    cpu_boundedness:
        Exponent ``beta`` in the service-time scaling rule
        ``service_time = demand / f**beta``: 1.0 for CPU-bound jobs (the
        paper's default), 0.0 for memory-bound jobs, intermediate values for
        mixed behaviour (Figure 4 sweeps beta over {1, 0.5, 0.2, 0}).
    """

    name: str
    interarrival: Distribution
    service: Distribution
    cpu_boundedness: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.cpu_boundedness <= 1.0:
            raise ConfigurationError(
                f"cpu_boundedness must lie in [0, 1], got {self.cpu_boundedness}"
            )

    # -- derived rates --------------------------------------------------------

    @property
    def arrival_rate(self) -> float:
        """``lambda`` — jobs per second offered by the arrival process."""
        return self.interarrival.rate

    @property
    def service_rate(self) -> float:
        """``mu`` — jobs per second at full frequency."""
        return self.service.rate

    @property
    def mean_service_time(self) -> float:
        """``1/mu`` — mean full-frequency job size, seconds."""
        return self.service.mean

    @property
    def utilization(self) -> float:
        """Offered load ``rho = lambda / mu`` implied by the two distributions."""
        return self.arrival_rate / self.service_rate

    # -- transformations -------------------------------------------------------

    def at_utilization(self, utilization: float) -> "WorkloadSpec":
        """Re-target the arrival process so the offered load equals *utilization*.

        The service-time distribution is left untouched — the paper notes
        that "in systems that serve only a single type of job, the service
        time distribution is stationary; what varies with utilization is the
        distribution of inter-arrival times".
        """
        if not 0.0 < utilization < 1.0:
            raise ConfigurationError(
                f"utilization must lie in (0, 1), got {utilization}"
            )
        target_mean_gap = self.mean_service_time / utilization
        factor = target_mean_gap / self.interarrival.mean
        return replace(self, interarrival=self.interarrival.scaled(factor))

    def with_cpu_boundedness(self, beta: float) -> "WorkloadSpec":
        """Copy of this spec with a different CPU-boundedness exponent."""
        return replace(self, cpu_boundedness=beta)

    def idealized(self) -> "WorkloadSpec":
        """The Section 4 idealisation: Poisson arrivals, exponential service.

        Only the means are preserved; the coefficients of variation collapse
        to 1.  This is the model SleepScale's "idealized" policy curves in
        Figure 6 are computed from.
        """
        return replace(
            self,
            interarrival=Exponential(self.interarrival.mean),
            service=Exponential(self.service.mean),
            name=f"{self.name}-idealized",
        )

    def summary(self) -> dict[str, float]:
        """Table 5-style summary row: means and coefficients of variation."""
        return {
            "interarrival_mean_s": self.interarrival.mean,
            "interarrival_cv": self.interarrival.cv,
            "service_mean_s": self.service.mean,
            "service_cv": self.service.cv,
            "utilization": self.utilization,
        }


# ---------------------------------------------------------------------------
# Table 5 presets
# ---------------------------------------------------------------------------

#: Table 5 rows: name -> (inter-arrival mean s, inter-arrival Cv,
#: service mean s, service Cv).
TABLE5_STATISTICS: dict[str, tuple[float, float, float, float]] = {
    "dns": (seconds(1.1), 1.1, milliseconds(194), 1.0),
    "mail": (milliseconds(206), 1.9, milliseconds(92), 3.6),
    "google": (microseconds(319), 1.2, milliseconds(4.2), 1.1),
}


def _spec_from_table5(name: str, empirical: bool) -> WorkloadSpec:
    try:
        gap_mean, gap_cv, service_mean, service_cv = TABLE5_STATISTICS[name]
    except KeyError as error:
        raise ConfigurationError(
            f"unknown Table 5 workload {name!r}; choose from "
            f"{sorted(TABLE5_STATISTICS)}"
        ) from error
    if empirical:
        interarrival = from_mean_cv(gap_mean, gap_cv)
        service = from_mean_cv(service_mean, service_cv)
    else:
        interarrival = Exponential(gap_mean)
        service = Exponential(service_mean)
    return WorkloadSpec(name=name, interarrival=interarrival, service=service)


def dns_workload(empirical: bool = True) -> WorkloadSpec:
    """The DNS look-up workload of Table 5 (large, ~194 ms jobs).

    With ``empirical=True`` the distributions match both mean and Cv of
    Table 5 (the BigHouse substitution); with ``empirical=False`` the
    idealised Poisson/exponential variant of Section 4 is returned.
    """
    return _spec_from_table5("dns", empirical)


def google_workload(empirical: bool = True) -> WorkloadSpec:
    """The Google web-search workload of Table 5 (small, ~4.2 ms jobs)."""
    return _spec_from_table5("google", empirical)


def mail_workload(empirical: bool = True) -> WorkloadSpec:
    """The Mail workload of Table 5 (bursty, heavy-tailed service times)."""
    return _spec_from_table5("mail", empirical)


def workload_by_name(name: str, empirical: bool = True) -> WorkloadSpec:
    """Look up a Table 5 workload by name (``"dns"``, ``"google"``, ``"mail"``)."""
    return _spec_from_table5(name.lower(), empirical)


def table5() -> dict[str, dict[str, float]]:
    """The full Table 5 as a mapping ``workload -> summary statistics``."""
    return {
        name: workload_by_name(name).summary() for name in sorted(TABLE5_STATISTICS)
    }
