"""Power substrate: CPU/platform states, component power, DVFS and sleep states.

This subpackage implements Section 3.1 of the paper — everything needed to
answer "how much power does the server draw, in which state, at which
frequency, and how long does it take to wake up".
"""

from repro.power.components import (
    ComponentInventory,
    ComponentMode,
    ComponentPower,
    CpuPowerModel,
    atom_component_inventory,
    xeon_component_inventory,
)
from repro.power.dvfs import (
    DvfsModel,
    discrete_pstate_grid,
    frequency_grid,
    stable_frequencies,
)
from repro.power.platform import (
    ServerPowerModel,
    atom_power_model,
    xeon_power_model,
)
from repro.power.sleep import SleepSequence, SleepStateSpec, immediate_sequence
from repro.power.states import (
    ACTIVE,
    C0I_S0I,
    C1_S0I,
    C3_S0I,
    C6_S0I,
    C6_S3,
    DEFAULT_WAKE_UP_LATENCIES,
    LOW_POWER_STATES,
    WAKE_UP_LATENCY_RANGES,
    CpuState,
    PlatformState,
    SystemState,
    WakeUpLatencyRange,
    default_wake_up_latency,
)

__all__ = [
    "ACTIVE",
    "C0I_S0I",
    "C1_S0I",
    "C3_S0I",
    "C6_S0I",
    "C6_S3",
    "ComponentInventory",
    "ComponentMode",
    "ComponentPower",
    "CpuPowerModel",
    "CpuState",
    "DEFAULT_WAKE_UP_LATENCIES",
    "DvfsModel",
    "LOW_POWER_STATES",
    "PlatformState",
    "ServerPowerModel",
    "SleepSequence",
    "SleepStateSpec",
    "SystemState",
    "WAKE_UP_LATENCY_RANGES",
    "WakeUpLatencyRange",
    "atom_component_inventory",
    "atom_power_model",
    "default_wake_up_latency",
    "discrete_pstate_grid",
    "frequency_grid",
    "immediate_sequence",
    "stable_frequencies",
    "xeon_component_inventory",
    "xeon_power_model",
]
