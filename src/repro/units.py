"""Unit helpers and physical constants used throughout the library.

All quantities in the library use SI base units internally:

* time is measured in **seconds**,
* power is measured in **watts**,
* energy is measured in **joules**.

The paper quotes wake-up latencies in microseconds/milliseconds and epoch
lengths in minutes, so small conversion helpers are provided to keep call
sites readable (``milliseconds(100)`` instead of ``100e-3``).
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Time conversions (all return seconds)
# ---------------------------------------------------------------------------

#: Number of seconds in one minute.
SECONDS_PER_MINUTE = 60.0

#: Number of seconds in one hour.
SECONDS_PER_HOUR = 3600.0

#: Number of seconds in one day.
SECONDS_PER_DAY = 86400.0


def microseconds(value: float) -> float:
    """Convert *value* expressed in microseconds to seconds."""
    return value * 1e-6


def milliseconds(value: float) -> float:
    """Convert *value* expressed in milliseconds to seconds."""
    return value * 1e-3


def seconds(value: float) -> float:
    """Identity helper: *value* is already in seconds.

    Exists so call sites can be written symmetrically, e.g.
    ``wake_up=seconds(1.0)`` next to ``wake_up=milliseconds(1.0)``.
    """
    return float(value)


def minutes(value: float) -> float:
    """Convert *value* expressed in minutes to seconds."""
    return value * SECONDS_PER_MINUTE


def hours(value: float) -> float:
    """Convert *value* expressed in hours to seconds."""
    return value * SECONDS_PER_HOUR


def days(value: float) -> float:
    """Convert *value* expressed in days to seconds."""
    return value * SECONDS_PER_DAY


# ---------------------------------------------------------------------------
# Inverse conversions (from seconds)
# ---------------------------------------------------------------------------


def to_milliseconds(value_seconds: float) -> float:
    """Convert a duration in seconds to milliseconds."""
    return value_seconds * 1e3


def to_microseconds(value_seconds: float) -> float:
    """Convert a duration in seconds to microseconds."""
    return value_seconds * 1e6


def to_minutes(value_seconds: float) -> float:
    """Convert a duration in seconds to minutes."""
    return value_seconds / SECONDS_PER_MINUTE


def to_hours(value_seconds: float) -> float:
    """Convert a duration in seconds to hours."""
    return value_seconds / SECONDS_PER_HOUR


# ---------------------------------------------------------------------------
# Energy
# ---------------------------------------------------------------------------


def watt_hours(energy_joules: float) -> float:
    """Convert energy in joules to watt-hours."""
    return energy_joules / SECONDS_PER_HOUR


def joules(power_watts: float, duration_seconds: float) -> float:
    """Energy consumed by a constant *power_watts* draw over *duration_seconds*."""
    return power_watts * duration_seconds
