"""Tests of the top-level public API surface."""

from __future__ import annotations

import importlib

import pytest

import repro


class TestPublicApi:
    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_all_names_resolve(self):
        missing = [name for name in repro.__all__ if not hasattr(repro, name)]
        assert missing == []

    def test_no_duplicate_exports(self):
        assert len(repro.__all__) == len(set(repro.__all__))

    def test_key_entry_points_present(self):
        for name in (
            "SleepScaleRuntime",
            "PolicyManager",
            "AnalyticPolicyManager",
            "ClusterRuntime",
            "sleepscale_strategy",
            "figure9_strategies",
            "xeon_power_model",
            "dns_workload",
            "simulate_workload",
        ):
            assert name in repro.__all__

    @pytest.mark.parametrize(
        "module",
        [
            "repro.power",
            "repro.workloads",
            "repro.simulation",
            "repro.analytic",
            "repro.policies",
            "repro.prediction",
            "repro.core",
            "repro.cluster",
            "repro.experiments",
        ],
    )
    def test_subpackages_import_and_export_cleanly(self, module):
        imported = importlib.import_module(module)
        exported = getattr(imported, "__all__", [])
        missing = [name for name in exported if not hasattr(imported, name)]
        assert missing == []

    def test_docstring_quickstart_mentions_runtime(self):
        assert "SleepScaleRuntime" in (repro.__doc__ or "")
