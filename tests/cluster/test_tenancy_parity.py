"""Bit-identity legs of the multi-tenant QoS contract (REP003 evidence).

Two oracles are pinned here:

* **farm-qos** — attaching ``FarmQos.strictest()`` (the "strictest"
  mode, with or without an explicit constraint) to any scenario's farm
  is bit-identical to attaching no qos at all, across every registered
  scenario and the executor × trace-backend grid; "per-tenant" mode is
  additionally result-invisible at farm level (same energy, same
  response times — only the ``tenancy`` accounting is new).
* **tenant-dispatch** — with a single tenant, the "priority" and
  "weighted-fair" dispatchers degenerate to the tenant-blind
  "least-loaded" oracle byte for byte (the single block spans the whole
  fleet), and chunked dispatch equals one-shot dispatch for both.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.cluster.dispatch import LeastLoadedDispatcher
from repro.cluster.tenancy import (
    FarmQos,
    PriorityDispatcher,
    TenantSpec,
    WeightedFairDispatcher,
)
from repro.core.qos import mean_qos_from_baseline
from repro.scenarios import available_scenarios, get_scenario
from tests.cluster.test_executor_parity import (
    _tiny_overrides,
    assert_farm_results_identical,
)

#: Executor × trace-backend grid the farm-qos contract quantifies over on
#: the representative scenario (every scenario is pinned serial/memory).
GRID = tuple(
    (executor, backend)
    for executor in ("serial", "thread", "process")
    for backend in ("memory", "shm", "mmap")
)


def _plain_oracle(name: str, overrides: dict):
    """Qos-free serial/memory reference run for *name*.

    The tenant scenarios embed a per-tenant FarmQos by construction, so
    the oracle strips whatever qos the builder attached.
    """
    built = get_scenario(name).build(seed=9, executor="serial", **overrides)
    if built.farm.qos is not None:
        built = dataclasses.replace(
            built, farm=dataclasses.replace(built.farm, qos=None)
        )
    return built.run()


class TestStrictestParityEverywhere:
    """``FarmQos.strictest()`` vs no qos: every registered scenario."""

    @pytest.fixture(params=sorted(available_scenarios()))
    def name(self, request):
        return request.param

    def test_strictest_matches_no_qos(self, name):
        overrides = _tiny_overrides(name)
        oracle = _plain_oracle(name, overrides)
        built = get_scenario(name).build(
            seed=9, executor="serial", qos=FarmQos.strictest(), **overrides
        )
        result = built.run()
        assert_farm_results_identical(oracle, result)
        # Strictest mode carries no tenant accounting.
        assert result.tenancy is None
        assert result.tenant_rows() == ()


class TestStrictestParityAcrossTheGrid:
    """The representative scenario across executors and trace backends."""

    def test_strictest_matches_no_qos_on_every_cell(self):
        overrides = _tiny_overrides("diurnal")
        oracle = _plain_oracle("diurnal", overrides)
        for executor, backend in GRID:
            built = get_scenario("diurnal").build(
                seed=9,
                executor=executor,
                trace_backend=backend,
                qos=FarmQos.strictest(),
                **overrides,
            )
            built.farm.max_workers = 2
            assert_farm_results_identical(oracle, built.run())


class TestPerTenantResultInvisibility:
    """"per-tenant" mode adds accounting without changing farm results."""

    @pytest.fixture(params=sorted(available_scenarios()))
    def name(self, request):
        return request.param

    def test_per_tenant_qos_only_adds_accounting(self, name):
        built = get_scenario(name).build(seed=9, **_tiny_overrides(name))
        qos = built.farm.qos
        if qos is None or not qos.is_per_tenant:
            pytest.skip("scenario is not multi-tenant")
        stripped = dataclasses.replace(
            built, farm=dataclasses.replace(built.farm, qos=None)
        )
        result = built.run()
        assert_farm_results_identical(stripped.run(), result)
        assert result.tenancy is not None
        rows = result.tenant_rows()
        assert [row.name for row in rows] == list(qos.tenant_names)
        assert sum(row.num_jobs for row in rows) == len(built.jobs)

    def test_per_tenant_grid_parity_on_noisy_neighbor(self):
        overrides = _tiny_overrides("noisy-neighbor")
        scenario = get_scenario("noisy-neighbor")
        oracle_built = scenario.build(seed=9, executor="serial", **overrides)
        oracle = oracle_built.run()
        oracle_rows = oracle.tenant_rows()
        for executor, backend in GRID:
            built = scenario.build(
                seed=9, executor=executor, trace_backend=backend, **overrides
            )
            built.farm.max_workers = 2
            result = built.run()
            assert_farm_results_identical(oracle, result)
            assert result.tenant_rows() == oracle_rows, (executor, backend)


def _single_tenant():
    return (TenantSpec(name="only", qos=mean_qos_from_baseline(0.8)),)


def _stream(num_jobs: int = 400, labelled: bool = True):
    from repro.workloads.jobs import JobTrace

    rng = np.random.default_rng(11)
    arrivals = np.cumsum(rng.exponential(0.02, size=num_jobs))
    demands = rng.exponential(0.015, size=num_jobs)
    labels = np.zeros(num_jobs, dtype=np.int64) if labelled else None
    return JobTrace(arrivals, demands, tenant_ids=labels)


class TestSingleTenantDegeneracy:
    """One tenant ⇒ the "least-loaded" oracle, byte for byte."""

    @pytest.mark.parametrize("labelled", [True, False])
    @pytest.mark.parametrize(
        "dispatcher_cls", [PriorityDispatcher, WeightedFairDispatcher]
    )
    def test_single_tenant_matches_least_loaded(self, dispatcher_cls, labelled):
        jobs = _stream(labelled=labelled)
        oracle = LeastLoadedDispatcher().assign(jobs, 5)
        fast = dispatcher_cls(_single_tenant()).assign(jobs, 5)
        assert np.array_equal(oracle, fast)

    @pytest.mark.parametrize(
        "dispatcher_cls", [PriorityDispatcher, WeightedFairDispatcher]
    )
    def test_single_tenant_matches_with_heterogeneous_speeds(
        self, dispatcher_cls
    ):
        jobs = _stream()
        speeds = [1.0, 0.5, 2.0]
        oracle = LeastLoadedDispatcher().assign(jobs, 3, server_speeds=speeds)
        fast = dispatcher_cls(_single_tenant()).assign(
            jobs, 3, server_speeds=speeds
        )
        assert np.array_equal(oracle, fast)


class TestChunkedDispatchParity:
    """Chunked == one-shot for both tenant dispatchers (streaming contract)."""

    def _two_tenant_stream(self, num_jobs: int = 500):
        from repro.workloads.jobs import JobTrace

        rng = np.random.default_rng(13)
        arrivals = np.cumsum(rng.exponential(0.02, size=num_jobs))
        demands = rng.exponential(0.015, size=num_jobs)
        labels = rng.integers(0, 2, size=num_jobs)
        return JobTrace(arrivals, demands, tenant_ids=labels)

    @pytest.mark.parametrize(
        "dispatcher_cls", [PriorityDispatcher, WeightedFairDispatcher]
    )
    def test_chunked_assignment_matches_one_shot(self, dispatcher_cls):
        tenants = (
            TenantSpec(name="a", qos=mean_qos_from_baseline(0.8)),
            TenantSpec(
                name="b", qos=mean_qos_from_baseline(0.8), weight=2.0, priority=1
            ),
        )
        jobs = self._two_tenant_stream()
        dispatcher = dispatcher_cls(tenants)
        one_shot = dispatcher.assign(jobs, 5)
        assigner = dispatcher.assigner(
            5, total_jobs=len(jobs), tenant_ids=jobs.tenant_ids
        )
        chunks = []
        for start in range(0, len(jobs), 64):
            chunks.append(
                assigner.assign_chunk(
                    jobs.arrival_times[start : start + 64],
                    jobs.service_demands[start : start + 64],
                )
            )
        assert np.array_equal(one_shot, np.concatenate(chunks))

    def test_chunked_farm_run_reproduces_tenant_rows(self):
        overrides = _tiny_overrides("noisy-neighbor")
        scenario = get_scenario("noisy-neighbor")
        one_shot = scenario.build(seed=9, **overrides)
        chunked = scenario.build(seed=9, **overrides)
        expected = one_shot.run()
        actual = chunked.farm.run(chunked.jobs, chunk_jobs=128)
        assert_farm_results_identical(expected, actual)
        assert actual.tenant_rows() == expected.tenant_rows()
