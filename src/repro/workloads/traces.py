"""Utilisation traces: the Figure 7 substrate.

The paper evaluates SleepScale by replaying minute-granularity utilisation
traces collected from academic departmental servers (a *file server* and an
*email store*, Figure 7) on top of BigHouse workload statistics.  Those
traces are not publicly available, so this module provides:

* :class:`UtilizationTrace` — a minute-granularity utilisation time series
  with slicing, resampling and summary helpers, plus CSV round-tripping so
  real traces can be dropped in;
* synthetic generators :func:`synthetic_file_server_trace` and
  :func:`synthetic_email_store_trace` that reproduce the qualitative features
  the paper describes and relies on:

  - the **file server** trace stays at low utilisation (roughly 0.02–0.2)
    with small, noisy fluctuations;
  - the **email store** trace spans roughly 0.1–0.9 across the day with a
    clear diurnal pattern and abrupt surges towards the end of each day
    caused by maintenance and back-up jobs (the paper evaluates SleepScale
    from 2 AM to 8 PM to exclude that window).

The synthetic traces are deterministic given a seed, three days long by
default, and start at midnight like the originals.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Iterable, Sequence

import numpy as np

from repro.exceptions import TraceError
from repro.units import SECONDS_PER_DAY, SECONDS_PER_HOUR, minutes


@dataclass(frozen=True)
class TraceSummary:
    """Summary statistics of a utilisation trace."""

    mean: float
    minimum: float
    maximum: float
    std: float
    duration_hours: float


class UtilizationTrace:
    """A regularly sampled utilisation time series.

    ``values[i]`` is the average utilisation over
    ``[start_time + i * interval, start_time + (i+1) * interval)``.
    All utilisations must lie in ``[0, 1]``.
    """

    def __init__(
        self,
        values: Sequence[float] | np.ndarray,
        interval: float = minutes(1),
        start_time: float = 0.0,
        name: str = "trace",
    ):
        data = np.asarray(values, dtype=float)
        if data.ndim != 1 or data.size == 0:
            raise TraceError("a utilisation trace must be a non-empty 1-D series")
        if not np.all(np.isfinite(data)):
            raise TraceError("utilisation values must be finite")
        if np.any(data < 0.0) or np.any(data > 1.0):
            raise TraceError("utilisation values must lie in [0, 1]")
        if interval <= 0:
            raise TraceError(f"interval must be positive, got {interval}")
        if start_time < 0:
            raise TraceError(f"start_time must be non-negative, got {start_time}")
        self._values = data
        self._interval = float(interval)
        self._start_time = float(start_time)
        self._name = name

    # -- basic accessors -------------------------------------------------------

    @property
    def values(self) -> np.ndarray:
        """The utilisation samples (read-only view)."""
        view = self._values.view()
        view.flags.writeable = False
        return view

    @property
    def interval(self) -> float:
        """Sampling interval in seconds."""
        return self._interval

    @property
    def start_time(self) -> float:
        """Absolute start time of the first interval, seconds."""
        return self._start_time

    @property
    def name(self) -> str:
        """Human-readable trace name."""
        return self._name

    @property
    def duration(self) -> float:
        """Total covered time span, seconds."""
        return self._interval * len(self)

    @property
    def end_time(self) -> float:
        """Absolute end time of the last interval, seconds."""
        return self._start_time + self.duration

    @property
    def times(self) -> np.ndarray:
        """Absolute start times of every interval."""
        return self._start_time + self._interval * np.arange(len(self))

    def __len__(self) -> int:
        return int(self._values.size)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UtilizationTrace):
            return NotImplemented
        return (
            np.array_equal(self._values, other._values)
            and self._interval == other._interval
            and self._start_time == other._start_time
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"UtilizationTrace({self._name!r}, n={len(self)}, "
            f"interval={self._interval:.0f}s, mean={float(np.mean(self._values)):.3f})"
        )

    # -- queries ----------------------------------------------------------------

    def value_at(self, time: float) -> float:
        """Utilisation of the interval containing absolute *time*."""
        if not self._start_time <= time < self.end_time:
            raise TraceError(
                f"time {time} outside trace span "
                f"[{self._start_time}, {self.end_time})"
            )
        index = int((time - self._start_time) // self._interval)
        index = min(index, len(self) - 1)
        return float(self._values[index])

    def summary(self) -> TraceSummary:
        """Mean, min, max, standard deviation and duration of the trace."""
        return TraceSummary(
            mean=float(np.mean(self._values)),
            minimum=float(np.min(self._values)),
            maximum=float(np.max(self._values)),
            std=float(np.std(self._values)),
            duration_hours=self.duration / SECONDS_PER_HOUR,
        )

    # -- transformations ----------------------------------------------------------

    def slice_hours(self, start_hour: float, end_hour: float) -> "UtilizationTrace":
        """Restrict the trace to the daily window ``[start_hour, end_hour)``.

        Hours are measured from the trace's start (assumed to be midnight,
        as in Figure 7) modulo 24, so ``slice_hours(2, 20)`` keeps 2 AM–8 PM
        of every day — the evaluation window of Section 6.1.
        """
        if not 0.0 <= start_hour < end_hour <= 24.0:
            raise TraceError(
                f"invalid daily window [{start_hour}, {end_hour})"
            )
        hour_of_day = (
            (self.times - self._start_time) % SECONDS_PER_DAY
        ) / SECONDS_PER_HOUR
        mask = (hour_of_day >= start_hour) & (hour_of_day < end_hour)
        if not np.any(mask):
            raise TraceError("daily window selects no samples")
        return UtilizationTrace(
            self._values[mask],
            interval=self._interval,
            start_time=self._start_time,
            name=f"{self._name}[{start_hour:g}h-{end_hour:g}h]",
        )

    def slice_index(self, start: int, stop: int) -> "UtilizationTrace":
        """Samples ``start`` (inclusive) to ``stop`` (exclusive)."""
        if not 0 <= start < stop <= len(self):
            raise TraceError(f"invalid index window [{start}, {stop})")
        return UtilizationTrace(
            self._values[start:stop],
            interval=self._interval,
            start_time=self._start_time + start * self._interval,
            name=self._name,
        )

    def clipped(self, low: float, high: float) -> "UtilizationTrace":
        """Clamp every sample into ``[low, high]``."""
        if not 0.0 <= low <= high <= 1.0:
            raise TraceError(f"invalid clip range [{low}, {high}]")
        return UtilizationTrace(
            np.clip(self._values, low, high),
            interval=self._interval,
            start_time=self._start_time,
            name=self._name,
        )

    def scaled(self, factor: float) -> "UtilizationTrace":
        """Multiply every sample by *factor* (result clipped to [0, 1])."""
        if factor <= 0:
            raise TraceError(f"scale factor must be positive, got {factor}")
        return UtilizationTrace(
            np.clip(self._values * factor, 0.0, 1.0),
            interval=self._interval,
            start_time=self._start_time,
            name=self._name,
        )

    def resampled(self, interval: float) -> "UtilizationTrace":
        """Aggregate the trace to a coarser sampling *interval* by averaging."""
        if interval < self._interval:
            raise TraceError(
                "resampling only supports coarsening; requested interval "
                f"{interval} < current {self._interval}"
            )
        group = max(1, int(round(interval / self._interval)))
        usable = (len(self) // group) * group
        if usable == 0:
            raise TraceError("trace too short for the requested interval")
        grouped = self._values[:usable].reshape(-1, group).mean(axis=1)
        return UtilizationTrace(
            grouped,
            interval=self._interval * group,
            start_time=self._start_time,
            name=self._name,
        )

    # -- persistence ----------------------------------------------------------------

    def to_csv(self, path: str | Path) -> None:
        """Write the trace to a two-column CSV (``time_s, utilization``)."""
        path = Path(path)
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["time_s", "utilization"])
            for time, value in zip(self.times, self._values, strict=True):
                writer.writerow([f"{time:.6f}", f"{value:.6f}"])

    @classmethod
    def from_csv(
        cls, path: str | Path, name: str | None = None
    ) -> "UtilizationTrace":
        """Load a trace written by :meth:`to_csv` (or any compatible CSV)."""
        path = Path(path)
        times: list[float] = []
        values: list[float] = []
        with path.open(newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader, None)
            if header is None:
                raise TraceError(f"{path} is empty")
            for row in reader:
                if not row:
                    continue
                times.append(float(row[0]))
                values.append(float(row[1]))
        if len(values) < 2:
            raise TraceError(f"{path} contains fewer than two samples")
        intervals = np.diff(times)
        if np.any(intervals <= 0) or not np.allclose(intervals, intervals[0]):
            raise TraceError(f"{path} is not regularly sampled")
        return cls(
            values,
            interval=float(intervals[0]),
            start_time=float(times[0]),
            name=name or path.stem,
        )

    @classmethod
    def from_values(
        cls,
        values: Iterable[float],
        interval: float = minutes(1),
        name: str = "trace",
    ) -> "UtilizationTrace":
        """Convenience constructor from any iterable of utilisations."""
        return cls(list(values), interval=interval, start_time=0.0, name=name)


# ---------------------------------------------------------------------------
# Synthetic Figure 7 traces
# ---------------------------------------------------------------------------


def _diurnal_profile(minutes_of_day: np.ndarray, peak_hour: float, width_hours: float) -> np.ndarray:
    """Smooth daily bump peaking at *peak_hour* with the given width."""
    hours = minutes_of_day / 60.0
    # Wrap-around distance to the peak hour.
    distance = np.minimum(np.abs(hours - peak_hour), 24.0 - np.abs(hours - peak_hour))
    return np.exp(-0.5 * (distance / width_hours) ** 2)


def synthetic_email_store_trace(
    days: int = 3,
    seed: int = 7,
    interval: float = minutes(1),
) -> UtilizationTrace:
    """Synthetic stand-in for the paper's *email store* utilisation trace.

    Qualitative features reproduced from Figure 7 and its discussion:

    * minute granularity, starting at midnight, *days* days long;
    * utilisation spanning roughly 0.1 at night to about 0.9 at the daily
      peak, with a smooth diurnal pattern peaking in the afternoon;
    * abrupt surges towards the end of each day (from about 8 PM to 2 AM)
      caused by back-up and maintenance operations;
    * small minute-to-minute noise so predictors have something to track.
    """
    if days < 1:
        raise TraceError(f"need at least one day, got {days}")
    rng = np.random.default_rng(seed)
    samples_per_day = int(round(SECONDS_PER_DAY / interval))
    minutes_of_day = np.arange(samples_per_day) * interval / 60.0

    base = 0.12 + 0.55 * _diurnal_profile(minutes_of_day, peak_hour=14.0, width_hours=4.5)
    base += 0.18 * _diurnal_profile(minutes_of_day, peak_hour=10.0, width_hours=2.5)

    values = []
    for _ in range(days):
        day = base.copy()
        # Nightly back-up/maintenance surges between 20:00 and 26:00 (2 AM).
        surge_mask = (minutes_of_day / 60.0 >= 20.0) | (minutes_of_day / 60.0 < 2.0)
        surge = np.zeros_like(day)
        surge_starts = rng.integers(0, samples_per_day, size=6)
        for start in surge_starts:
            hour = minutes_of_day[start] / 60.0
            if not (hour >= 20.0 or hour < 2.0):
                continue
            length = int(rng.integers(10, 40))
            end = min(start + length, samples_per_day)
            surge[start:end] = rng.uniform(0.5, 0.8)
        day = np.where(surge_mask, np.maximum(day, 0.2 + surge), day)
        # Minute-to-minute noise and a few random short spikes during the day.
        day += rng.normal(0.0, 0.025, size=samples_per_day)
        spike_positions = rng.integers(0, samples_per_day, size=8)
        day[spike_positions] += rng.uniform(0.05, 0.25, size=8)
        values.append(np.clip(day, 0.05, 0.92))
    return UtilizationTrace(
        np.concatenate(values),
        interval=interval,
        start_time=0.0,
        name="email-store",
    )


def synthetic_file_server_trace(
    days: int = 3,
    seed: int = 11,
    interval: float = minutes(1),
) -> UtilizationTrace:
    """Synthetic stand-in for the paper's *file server* utilisation trace.

    Figure 7's file-server trace stays at low utilisation (below roughly 0.2)
    with small fluctuations and a mild working-hours bump; this generator
    reproduces that envelope.
    """
    if days < 1:
        raise TraceError(f"need at least one day, got {days}")
    rng = np.random.default_rng(seed)
    samples_per_day = int(round(SECONDS_PER_DAY / interval))
    minutes_of_day = np.arange(samples_per_day) * interval / 60.0

    base = 0.03 + 0.09 * _diurnal_profile(minutes_of_day, peak_hour=15.0, width_hours=5.0)
    values = []
    for _ in range(days):
        day = base + rng.normal(0.0, 0.008, size=samples_per_day)
        spike_positions = rng.integers(0, samples_per_day, size=5)
        day[spike_positions] += rng.uniform(0.02, 0.08, size=5)
        values.append(np.clip(day, 0.01, 0.2))
    return UtilizationTrace(
        np.concatenate(values),
        interval=interval,
        start_time=0.0,
        name="file-server",
    )


def constant_trace(
    utilization: float,
    num_samples: int = 60,
    interval: float = minutes(1),
    name: str = "constant",
) -> UtilizationTrace:
    """A flat trace at a fixed utilisation — handy for tests and ablations."""
    if not 0.0 <= utilization <= 1.0:
        raise TraceError(f"utilization must lie in [0, 1], got {utilization}")
    if num_samples < 1:
        raise TraceError(f"num_samples must be >= 1, got {num_samples}")
    return UtilizationTrace(
        np.full(num_samples, utilization),
        interval=interval,
        start_time=0.0,
        name=name,
    )


def step_trace(
    low: float,
    high: float,
    num_samples: int = 120,
    interval: float = minutes(1),
    name: str = "step",
) -> UtilizationTrace:
    """A trace that jumps from *low* to *high* halfway — predictor stress test."""
    if not (0.0 <= low <= 1.0 and 0.0 <= high <= 1.0):
        raise TraceError("step levels must lie in [0, 1]")
    if num_samples < 2:
        raise TraceError(f"num_samples must be >= 2, got {num_samples}")
    half = num_samples // 2
    values = np.concatenate(
        [np.full(half, low), np.full(num_samples - half, high)]
    )
    return UtilizationTrace(values, interval=interval, start_time=0.0, name=name)
