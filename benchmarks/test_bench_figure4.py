"""Benchmark reproducing Figure 4: service-time dependence on CPU frequency."""

from __future__ import annotations

import pytest

from conftest import run_once
from repro.experiments import figure4


@pytest.mark.benchmark(group="figures")
def test_bench_figure4_cpu_boundedness(benchmark, experiment_config, record_result):
    result = run_once(benchmark, figure4.run, experiment_config)
    record_result(result)

    optimal = result.metadata["optimal_frequency_per_beta"]

    # The power-minimising frequency must not increase as the workload
    # becomes less CPU-bound (beta decreasing).
    ordered_betas = sorted(optimal, reverse=True)  # 1.0, 0.5, 0.2, 0.0
    frequencies = [optimal[beta] for beta in ordered_betas]
    assert all(a >= b - 1e-9 for a, b in zip(frequencies, frequencies[1:]))

    # For memory-bound jobs the lowest swept frequency is optimal.
    lowest_swept = min(row["frequency"] for row in result.filtered(beta=0.0))
    assert optimal[0.0] == pytest.approx(lowest_swept)

    # And for fully CPU-bound jobs the optimum is an interior frequency.
    cpu_bound_rows = result.filtered(beta=1.0)
    swept = sorted(row["frequency"] for row in cpu_bound_rows)
    assert swept[0] < optimal[1.0] < swept[-1]

    # Memory-bound response times are flat in frequency (service unaffected),
    # so the normalised response time at the lowest and highest frequency
    # must be close.
    memory_rows = sorted(result.filtered(beta=0.0), key=lambda r: r["frequency"])
    low_response = memory_rows[0]["normalized_mean_response_time"]
    high_response = memory_rows[-1]["normalized_mean_response_time"]
    assert low_response == pytest.approx(high_response, rel=0.1)
