"""Campaign execution: fan cells out, persist records, resume, merge.

:func:`run_campaign` is the one entry point: it pins the store to the
spec, enumerates the cells, skips the ones whose records are already
trusted (``resume=True``), and fans the rest out through the shared
:mod:`repro.concurrency` executor subsystem.  Cell tasks are plain
picklable data (:class:`CellTask`) executed by a module-level function,
so the process executor works exactly like the serial oracle — the cell
*records* are byte-identical whichever executor ran them (pinned by
``tests/campaigns/test_campaign_engine.py``).

Records are persisted batch-by-batch as cells finish, so an interruption
at any cell boundary leaves a valid partial store; the merged
``results.csv`` is only written when every cell of the campaign has a
record, and is rebuilt deterministically from the records alone.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Any

from repro.concurrency import Executor, fan_out
from repro.exceptions import CampaignError
from repro.campaigns.spec import (
    KIND_EXPERIMENT,
    CampaignCell,
    CampaignSpec,
    split_scenario_params,
)
from repro.campaigns.store import CampaignStore, make_cell_record

#: Executors campaign fan-out is pinned across: ``serial`` is the oracle,
#: ``thread`` and ``process`` must produce byte-identical cell records
#: (REP003 contract ``campaign-executor``).
CAMPAIGN_EXECUTORS = ("serial", "thread", "process")


@dataclasses.dataclass(frozen=True)
class CellTask:
    """Everything one worker needs to run one cell (plain picklable data)."""

    kind: str
    target: str
    seed: int
    params: dict[str, Any]
    fast: bool
    num_jobs: int | None
    frequency_step: float | None
    backend: str
    search: str


def cell_task(spec: CampaignSpec, cell: CampaignCell) -> CellTask:
    """The :class:`CellTask` for *cell* under *spec*."""
    return CellTask(
        kind=cell.kind,
        target=cell.target,
        seed=cell.seed,
        params=dict(cell.params),
        fast=spec.fast,
        num_jobs=spec.num_jobs,
        frequency_step=spec.frequency_step,
        backend=spec.backend,
        search=spec.search,
    )


def execute_cell(task: CellTask) -> dict[str, Any]:
    """Run one cell and return its JSON-ready result payload.

    Module-level and lambda-free so the process executor can ship it
    (REP002).  Imports are deferred: the experiment registry imports every
    figure module, and pulling that into this module's import graph would
    create a cycle (figure modules declare their campaigns with
    :mod:`repro.campaigns.spec`).
    """
    if task.kind == KIND_EXPERIMENT:
        from repro.experiments.base import ExperimentConfig
        from repro.experiments.report import experiment_payload
        from repro.experiments.runner import run_experiment

        config = ExperimentConfig(
            fast=task.fast,
            seed=task.seed,
            num_jobs=task.num_jobs,
            frequency_step=task.frequency_step,
        )
        result = run_experiment(task.target, config, **task.params)
        return experiment_payload(result)
    from repro.experiments.scenario_runner import run_scenario

    knobs, overrides = split_scenario_params(task.params)
    return run_scenario(
        task.target,
        seed=task.seed,
        backend=knobs.get("backend", task.backend),
        search=knobs.get("search", task.search),
        controller=knobs.get("controller"),
        overrides=overrides,
    )


@dataclasses.dataclass(frozen=True)
class CampaignRunResult:
    """What one :func:`run_campaign` call did.

    ``executed`` and ``skipped`` partition the cells the run considered
    (skipped = already had a trusted record); ``completed`` says whether
    every cell of the campaign now has a record, in which case
    ``results_path`` points at the merged CSV.
    """

    spec: CampaignSpec
    output_dir: Path
    executed: tuple[str, ...]
    skipped: tuple[str, ...]
    completed: bool
    results_path: Path | None


def run_campaign(
    spec: CampaignSpec,
    output_dir: str | Path,
    *,
    resume: bool = False,
    executor: Executor | str | None = None,
    max_workers: int | None = None,
    max_cells: int | None = None,
) -> CampaignRunResult:
    """Run (or resume) *spec*, persisting one record per cell under *output_dir*.

    *resume* skips cells whose records are already present and trusted —
    corrupted or stale records are re-run, and a resumed store ends up
    byte-identical to an uninterrupted one.  *executor*/*max_workers*
    select the fan-out (:data:`CAMPAIGN_EXECUTORS`; results are identical
    whichever executes).  *max_cells* bounds how many pending cells this
    call runs — the supported way to interrupt a campaign at a cell
    boundary (CI's campaign-smoke job runs a truncated pass, then a
    ``--resume`` pass, and asserts the stores match byte-for-byte).
    """
    if max_cells is not None and max_cells < 0:
        raise CampaignError(f"max_cells must be non-negative, got {max_cells}")
    store = CampaignStore(output_dir)
    store.initialise(spec, resume=resume)
    cells = spec.cells()
    done = store.completed_cell_ids(cells)
    pending = [cell for cell in cells if cell.cell_id not in done]
    if max_cells is not None:
        pending = pending[:max_cells]
    executed: list[str] = []
    # Batch the fan-out so records land on disk as the campaign progresses:
    # an interruption between batches loses at most one batch of work, and
    # a batch is at most one pool's worth of cells.
    batch_size = max(1, max_workers or 1)
    for start in range(0, len(pending), batch_size):
        batch = pending[start : start + batch_size]
        payloads = fan_out(
            [cell_task(spec, cell) for cell in batch],
            execute_cell,
            max_workers,
            executor,
        )
        for cell, payload in zip(batch, payloads, strict=True):
            store.write_cell(make_cell_record(spec, cell, payload))
            executed.append(cell.cell_id)
    completed = len(done) + len(executed) == len(cells)
    results_path = store.finalise(spec, cells) if completed else None
    return CampaignRunResult(
        spec=spec,
        output_dir=Path(output_dir),
        executed=tuple(executed),
        skipped=tuple(sorted(done)),
        completed=completed,
        results_path=results_path,
    )


def campaign_results(
    store: CampaignStore, spec: CampaignSpec
) -> list[dict[str, Any]]:
    """Every cell's validated record, in cell order (campaign must be complete)."""
    records = []
    for cell in spec.cells():
        record = store.load_cell(cell)
        if record is None:
            raise CampaignError(
                f"campaign {spec.name!r} is incomplete: cell {cell.cell_id} "
                "has no trusted record"
            )
        records.append(record)
    return records
