"""Pluggable fan-out executors: serial, thread pool, process pool.

The farm, the state sweeps and the experiment runner all offer the same
optional parallelism: independent work items, results in item order, serial
execution unless a pool is explicitly requested.  :func:`fan_out` is that
shape, once, so the call sites cannot drift apart — and since PR 5 the pool
behind it is pluggable:

* :class:`SerialExecutor` — run in the caller's thread (the oracle);
* :class:`ThreadExecutor` — a ``ThreadPoolExecutor``; cheap to start and
  shares memory, but Python-heavy work stays GIL-bound;
* :class:`ProcessExecutor` — a ``ProcessPoolExecutor``; work functions,
  items and results must pickle, in exchange the per-server epoch loops of a
  farm actually occupy multiple cores.

The executor contract (pinned by ``tests/test_concurrency.py`` and the
scenario-wide parity suite in ``tests/cluster/test_executor_parity.py``):
every executor applies the work function to each item independently and
returns results in item order; exceptions propagate, first in item order;
switching executors changes wall-clock only, never results.

Process-executor pickling failures are reported eagerly as
:class:`~repro.exceptions.ExecutorError` naming the offending item — not as
a hang, and not as a bare ``PicklingError`` from the pool's feeder thread.
"""

from __future__ import annotations

import abc
import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from collections.abc import Callable, Sequence
from typing import TypeVar

from repro.exceptions import ExecutorError

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")

#: Executor names accepted by every ``executor=`` knob (farm, cluster,
#: sweeps, experiment runner, ``Scenario.build`` and the CLIs).
EXECUTOR_SERIAL = "serial"
EXECUTOR_THREAD = "thread"
EXECUTOR_PROCESS = "process"
EXECUTORS = (EXECUTOR_SERIAL, EXECUTOR_THREAD, EXECUTOR_PROCESS)


def _validate_workers(max_workers: int | None) -> int | None:
    if max_workers is not None and max_workers < 1:
        raise ExecutorError(
            f"max_workers must be at least 1, got {max_workers}"
        )
    return max_workers


class Executor(abc.ABC):
    """Applies a function to independent work items, results in item order."""

    #: Name the executor answers to in reports and CLI flags.
    name: str = "executor"

    @abc.abstractmethod
    def map(
        self, fn: Callable[[ItemT], ResultT], items: Sequence[ItemT]
    ) -> list[ResultT]:
        """Apply *fn* to every item and return the results in item order."""

    def describe(self) -> str:
        """Human-readable description for logs and benchmark reports."""
        return self.name


class SerialExecutor(Executor):
    """Run every work item in the caller's thread, one after another."""

    name = EXECUTOR_SERIAL

    def map(
        self, fn: Callable[[ItemT], ResultT], items: Sequence[ItemT]
    ) -> list[ResultT]:
        return [fn(item) for item in items]


class ThreadExecutor(Executor):
    """Run work items on a thread pool.

    Results are identical to :class:`SerialExecutor` whenever the work items
    are independent (the library-wide requirement).  With fewer than two
    items the pool is skipped entirely.  ``max_workers=None`` uses the
    standard-library default sizing.
    """

    name = EXECUTOR_THREAD

    def __init__(self, max_workers: int | None = None):
        self.max_workers = _validate_workers(max_workers)

    def map(
        self, fn: Callable[[ItemT], ResultT], items: Sequence[ItemT]
    ) -> list[ResultT]:
        if len(items) <= 1:
            return [fn(item) for item in items]
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            futures = [pool.submit(fn, item) for item in items]
            return [future.result() for future in futures]


class ProcessExecutor(Executor):
    """Run work items on a process pool (true multi-core execution).

    The work function, every item and every result must pickle — they cross
    a process boundary.  An unpicklable work function is rejected up front
    (it is cheap to probe); an unpicklable item or result surfaces as the
    pool's own pickling failure, which :meth:`map` converts into an
    :class:`~repro.exceptions.ExecutorError` naming the item index — a
    clear, prompt error either way, never a wedged pool.  Items are *not*
    probe-pickled in advance: farm shards can carry megabytes of trace
    arrays, and serialising them twice would tax exactly the hot path this
    executor exists to speed up.  Worker count defaults to the machine's
    CPU count and is never larger than the number of items.

    The pool uses the ``fork`` start method where the platform offers it
    (cheap start-up, workers inherit the parent's imports); elsewhere the
    platform default applies.  Either way each worker process is fresh per
    :meth:`map` call, so no state leaks between fan-outs.
    """

    name = EXECUTOR_PROCESS

    def __init__(self, max_workers: int | None = None):
        self.max_workers = _validate_workers(max_workers)

    @staticmethod
    def _context():
        if "fork" in multiprocessing.get_all_start_methods():
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context()

    @staticmethod
    def _is_pickling_failure(error: BaseException) -> bool:
        """Whether *error* is the pool reporting unpicklable work.

        The pool's feeder thread sets the pickler's own exception on the
        affected future: ``PicklingError`` for unpicklable functions and
        closures, ``TypeError``/``AttributeError`` with a "pickle" message
        for unpicklable objects (locks, sockets, ...).
        """
        if isinstance(error, pickle.PicklingError):
            return True
        return isinstance(error, (TypeError, AttributeError)) and (
            "pickle" in str(error).lower()
        )

    def map(
        self, fn: Callable[[ItemT], ResultT], items: Sequence[ItemT]
    ) -> list[ResultT]:
        if not items:
            return []
        try:
            # Probe only the function: it is small, shared by every task,
            # and by far the most common pickling mistake (a lambda or
            # locally defined closure).
            pickle.dumps(fn)
        except Exception as error:
            raise ExecutorError(
                "the process executor requires picklable work; the work "
                f"function (type {type(fn).__name__}) cannot cross a "
                f"process boundary: {error}"
            ) from error
        workers = min(self.max_workers or os.cpu_count() or 1, len(items))
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=self._context()
        ) as pool:
            futures = [pool.submit(fn, item) for item in items]
            results = []
            for index, future in enumerate(futures):
                try:
                    results.append(future.result())
                except Exception as error:
                    if self._is_pickling_failure(error):
                        raise ExecutorError(
                            "the process executor requires picklable work; "
                            f"work item {index} (type "
                            f"{type(items[index]).__name__}) or its result "
                            f"cannot cross a process boundary: {error}"
                        ) from error
                    raise
            return results


def resolve_executor(
    executor: Executor | str | None,
    max_workers: int | None = None,
) -> Executor:
    """Turn an ``executor=`` knob value into a concrete :class:`Executor`.

    ``None`` preserves the pre-executor behaviour every call site shipped
    with: a thread pool when ``max_workers > 1``, serial otherwise —
    including the historical tolerance for ``max_workers <= 0`` meaning
    "no pool".  A string selects by name (:data:`EXECUTORS`), with
    *max_workers* sizing the pool (and then a count below 1 is rejected —
    an explicitly requested pool of zero workers is a configuration error);
    an :class:`Executor` instance is returned unchanged (its own worker
    count wins).
    """
    if isinstance(executor, Executor):
        return executor
    if executor is None:
        if max_workers is not None and max_workers > 1:
            return ThreadExecutor(max_workers)
        return SerialExecutor()
    _validate_workers(max_workers)
    if executor == EXECUTOR_SERIAL:
        return SerialExecutor()
    if executor == EXECUTOR_THREAD:
        return ThreadExecutor(max_workers)
    if executor == EXECUTOR_PROCESS:
        return ProcessExecutor(max_workers)
    raise ExecutorError(
        f"unknown executor {executor!r}; expected one of {EXECUTORS} "
        "or an Executor instance"
    )


def validate_executor(executor: Executor | str | None) -> None:
    """Reject unknown executor names early, discarding the resolved instance.

    For call sites that only need the name checked — :meth:`Scenario.build`
    validates before handing the name to the built farm; the farm configs
    resolve with their worker counts instead.
    """
    resolve_executor(executor)


def fan_out(
    items: Sequence[ItemT],
    fn: Callable[[ItemT], ResultT],
    max_workers: int | None,
    executor: Executor | str | None = None,
) -> list[ResultT]:
    """Apply *fn* to every item on the executor the arguments select.

    Results come back in item order.  With the default ``executor=None`` the
    historical contract holds unchanged: a thread pool when
    ``max_workers > 1`` and more than one item, serial otherwise (``None``,
    ``1`` and the historically tolerated ``<= 0`` all run in the caller's
    thread).  Exceptions propagate either way (first in item order for the
    pooled paths).  Items must be independent — *fn* must not rely on
    earlier calls' side effects.
    """
    return resolve_executor(executor, max_workers).map(fn, list(items))
