"""Table 2 — power consumption of the system's components.

Reproduces the per-component and total platform power numbers of Table 2
from the :mod:`repro.power` substrate and checks them against the figures
printed in the paper (platform totals of 120 W operating, 60.5 W idle/sleep,
13.1 W deeper sleep; CPU coefficients 130/75/47 W and constants 22/15 W).
"""

from __future__ import annotations

from repro.campaigns.spec import CampaignSpec
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.power.components import ComponentMode
from repro.power.platform import xeon_power_model
from repro.power.states import LOW_POWER_STATES

#: The paper's platform totals (watts) per Table 2 column.
PAPER_PLATFORM_TOTALS = {
    "operating": 120.0,
    "idle": 60.5,
    "sleep": 60.5,
    "deep_sleep": 60.5,
    "deeper_sleep": 13.1,
}

#: The paper's CPU power parameters (watts at full voltage/frequency).
PAPER_CPU_PARAMETERS = {
    "C0(a)": 130.0,
    "C0(i)": 75.0,
    "C1": 47.0,
    "C3": 22.0,
    "C6": 15.0,
}


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Build the Table 2 rows from the Xeon power model."""
    del config  # the power table does not depend on any experiment knob
    model = xeon_power_model()
    rows: list[dict[str, object]] = []

    for name, per_mode in model.inventory.table().items():
        row: dict[str, object] = {"component": name}
        row.update({mode: per_mode[mode] for mode in per_mode})
        rows.append(row)

    # Combined low-power system states at full frequency, with their wake-up
    # latencies (this also covers Table 4's representative values).
    for state in LOW_POWER_STATES:
        rows.append(
            {
                "component": f"system {state.name}",
                "operating": model.system_power(state, 1.0),
                "idle": model.system_power(state, 1.0),
                "sleep": model.system_power(state, 1.0),
                "deep_sleep": model.system_power(state, 1.0),
                "deeper_sleep": model.system_power(state, 1.0),
                "wake_up_latency_s": model.wake_up_latency(state),
            }
        )

    metadata = {
        "paper_platform_totals": PAPER_PLATFORM_TOTALS,
        "paper_cpu_parameters": PAPER_CPU_PARAMETERS,
        "model_platform_totals": {
            mode.value: model.inventory.platform_power(mode) for mode in ComponentMode
        },
        "peak_system_power_w": model.peak_power(),
    }
    notes = (
        "Platform totals should match the paper exactly: 120 W operating, "
        "60.5 W in the idle-like modes, 13.1 W in deeper sleep.",
        "System peak power (C0(a)S0(a) at f=1) is 130 + 120 = 250 W.",
    )
    return ExperimentResult(
        name="table2",
        description="Component and system power model (Table 2 / Table 4)",
        rows=tuple(rows),
        metadata=metadata,
        notes=notes,
    )


def platform_totals_match(result: ExperimentResult, tolerance: float = 1e-9) -> bool:
    """Whether the reproduced platform totals equal the paper's numbers."""
    model_totals = result.metadata["model_platform_totals"]
    return all(
        abs(model_totals[mode] - expected) <= tolerance
        for mode, expected in PAPER_PLATFORM_TOTALS.items()
    )


#: The power table depends on no experiment knob — a single-cell campaign.
CAMPAIGN = CampaignSpec(
    name="table2",
    kind="experiment",
    target="table2",
    description="Table 2 component power breakdown (single cell)",
)
