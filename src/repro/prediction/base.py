"""Utilisation predictor interface.

SleepScale's runtime predictor (Section 5.2) works epoch by epoch: at the
start of each epoch it predicts the utilisation of the epoch's first minute
from the minute-granularity utilisations observed so far, and the policy
manager scales the logged workload of past epochs to that prediction.

All predictors implement the same minimal interface:

* :meth:`UtilizationPredictor.observe` — feed one observed per-minute
  utilisation (called once per minute of history, in order);
* :meth:`UtilizationPredictor.predict` — the prediction for the *next*
  minute;
* :meth:`UtilizationPredictor.reset` — forget all history.

Predictions and observations are utilisations in ``[0, 1]``.
"""

from __future__ import annotations

import abc

from repro.exceptions import PredictionError


def validate_utilization(value: float) -> float:
    """Check that *value* is a valid utilisation and return it as a float."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise PredictionError(
            f"utilisation observations must lie in [0, 1], got {value}"
        )
    return value


class UtilizationPredictor(abc.ABC):
    """Base class for per-minute utilisation predictors.

    Parameters
    ----------
    initial_prediction:
        The value returned by :meth:`predict` before any observation has
        been made (the runtime controller needs *some* prediction for the
        very first epoch).
    """

    #: Short name used in figures and reports, e.g. ``"NP"`` or ``"LC"``.
    name: str = "predictor"

    def __init__(self, initial_prediction: float = 0.1):
        self._initial_prediction = validate_utilization(initial_prediction)
        self._observation_count = 0

    # -- subclass hooks ---------------------------------------------------------

    @abc.abstractmethod
    def _observe(self, utilization: float) -> None:
        """Incorporate one observation (already validated)."""

    @abc.abstractmethod
    def _predict(self) -> float:
        """Prediction for the next minute (at least one observation made)."""

    def _reset(self) -> None:
        """Clear subclass state; the default does nothing extra."""

    # -- public interface ----------------------------------------------------------

    def observe(self, utilization: float) -> None:
        """Feed one observed per-minute utilisation."""
        self._observe(validate_utilization(utilization))
        self._observation_count += 1

    def observe_many(self, utilizations) -> None:
        """Feed a sequence of observations in chronological order."""
        for value in utilizations:
            self.observe(value)

    def predict(self) -> float:
        """Predicted utilisation of the next minute, clipped into ``[0, 1]``."""
        if self._observation_count == 0:
            return self._initial_prediction
        prediction = self._predict()
        return min(1.0, max(0.0, float(prediction)))

    def reset(self) -> None:
        """Forget all observed history."""
        self._observation_count = 0
        self._reset()

    @property
    def observation_count(self) -> int:
        """How many observations have been fed so far."""
        return self._observation_count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(observations={self._observation_count})"
