"""Documentation must not rot: README and ARCHITECTURE code blocks execute.

Every ``>>>`` example in the two documents runs as a doctest (the same check
CI performs with ``python -m doctest``), and the README scenario cookbook is
cross-checked against the live scenario registry so adding a scenario
without documenting it — or documenting one that does not exist — fails.
"""

from __future__ import annotations

import doctest
from pathlib import Path

import pytest

from repro.scenarios import available_scenarios, get_scenario

REPO_ROOT = Path(__file__).resolve().parents[2]
DOCUMENTS = {
    "README.md": REPO_ROOT / "README.md",
    "docs/ARCHITECTURE.md": REPO_ROOT / "docs" / "ARCHITECTURE.md",
}


class TestDoctests:
    @pytest.mark.parametrize("label", sorted(DOCUMENTS))
    def test_document_examples_execute(self, label):
        path = DOCUMENTS[label]
        assert path.exists(), f"{label} is missing"
        results = doctest.testfile(
            str(path),
            module_relative=False,
            verbose=False,
            optionflags=doctest.NORMALIZE_WHITESPACE,
        )
        assert results.failed == 0, f"{results.failed} doctest failure(s) in {label}"
        assert results.attempted > 0, f"{label} contains no executable examples"


class TestCookbookCoverage:
    def test_every_registered_scenario_is_documented(self):
        readme = DOCUMENTS["README.md"].read_text()
        for name in available_scenarios():
            assert f"### `{name}`" in readme, (
                f"scenario {name!r} is registered but missing from the README "
                "scenario cookbook"
            )
            assert f"run-scenario {name}" in readme, (
                f"the README cookbook must show the one-line CLI for {name!r}"
            )

    def test_every_documented_parameter_exists(self):
        """Each cookbook one-liner's --set overrides name real parameters."""
        readme = DOCUMENTS["README.md"].read_text()
        for line in readme.splitlines():
            if "run-scenario" not in line or "--set" not in line:
                continue
            tokens = line.split()
            name = tokens[tokens.index("run-scenario") + 1]
            declared = set(get_scenario(name).parameter_defaults())
            for index, token in enumerate(tokens):
                if token == "--set":
                    key = tokens[index + 1].split("=")[0]
                    assert key in declared, (
                        f"README documents unknown parameter {key!r} for {name!r}"
                    )

    def test_architecture_documents_the_schema_tag(self):
        from repro.experiments.scenario_runner import REPORT_SCHEMA

        architecture = DOCUMENTS["docs/ARCHITECTURE.md"].read_text()
        assert REPORT_SCHEMA in architecture

    def test_campaign_schemas_are_documented(self):
        from repro.campaigns.spec import SPEC_SCHEMA
        from repro.campaigns.store import CELL_SCHEMA
        from repro.experiments.report import EXPERIMENT_REPORT_SCHEMA

        architecture = DOCUMENTS["docs/ARCHITECTURE.md"].read_text()
        readme = DOCUMENTS["README.md"].read_text()
        assert SPEC_SCHEMA in architecture
        assert CELL_SCHEMA in architecture
        assert CELL_SCHEMA in readme
        assert EXPERIMENT_REPORT_SCHEMA in architecture
        assert EXPERIMENT_REPORT_SCHEMA in readme

    def test_readme_documents_the_resume_workflow(self):
        readme = DOCUMENTS["README.md"].read_text()
        assert "run-campaign" in readme
        assert "--resume" in readme
        assert "list-campaigns" in readme
