"""Property-based tests for the farm controller contract.

Fuzzes the planner, the regime-masked dispatch and the farm-level energy
accounting with hypothesis: job conservation under scale-down, no job ever
routed to a parked or still-waking server, setup energy equal to the sum
over paid wake transitions, awake counts clamped to
``[min_awake, n_servers]``, energy accounting closing exactly, and — the
regression this PR fixes — each parked span charged **exactly once**
(deep-sleep power for the parked span, sleep-walk proration only for the
remainder), never both rates over the same seconds.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.controller import (
    FarmController,
    RightSizingPolicy,
    SetupModel,
    controller_assignment,
)
from repro.cluster.dispatch import LeastLoadedDispatcher, RandomDispatcher
from repro.cluster.farm import (
    PARKED_STATE,
    ServerFarm,
    ServerSpec,
    prorated_idle_energy,
)
from repro.core.qos import mean_qos_from_baseline
from repro.core.runtime import RuntimeConfig
from repro.core.strategies import sleepscale_strategy
from repro.power.platform import xeon_power_model
from repro.prediction.lms_cusum import LmsCusumPredictor
from repro.workloads.jobs import JobTrace
from repro.workloads.spec import dns_workload

_EPOCH_SECONDS = 60.0


class ScriptedPolicy(RightSizingPolicy):
    """Replays a fixed target sequence: arbitrary surge/trough patterns."""

    name = "scripted"

    def __init__(self, targets):
        self._targets = tuple(int(t) for t in targets)

    def reset(self, num_servers: int, min_awake: int) -> None:
        super().reset(num_servers, min_awake)
        self._cursor = 0

    def target_awake(self, observed_load: float, current_awake: int) -> int:
        if self._cursor < len(self._targets):
            target = self._targets[self._cursor]
            self._cursor += 1
            return target
        return current_awake


def _trace_over(num_epochs: int, jobs_per_epoch: int = 4) -> JobTrace:
    """Evenly spread deterministic arrivals covering all *num_epochs*."""
    arrivals = []
    for epoch in range(num_epochs):
        start = epoch * _EPOCH_SECONDS
        for j in range(jobs_per_epoch):
            arrivals.append(start + (j + 0.5) * _EPOCH_SECONDS / jobs_per_epoch)
    times = np.asarray(arrivals, dtype=float)
    return JobTrace(times, np.full(times.size, 0.05))


def _plan(num_servers, min_awake, latency, targets, num_epochs):
    controller = FarmController(
        policy=ScriptedPolicy(targets),
        setup=SetupModel(latency_s=latency),
        min_awake=min_awake,
    )
    trace = _trace_over(num_epochs)
    schedule = controller.plan(
        trace.arrival_times,
        trace.service_demands,
        num_servers=num_servers,
        epoch_seconds=_EPOCH_SECONDS,
    )
    return controller, trace, schedule


#: One fuzzed planning instance: fleet size, floor, setup latency and an
#: arbitrary (even out-of-range) commanded-target script.
plan_inputs = st.tuples(
    st.integers(min_value=1, max_value=6),          # num_servers
    st.integers(min_value=1, max_value=6),          # min_awake (may exceed n)
    st.floats(min_value=0.0, max_value=150.0),      # setup latency
    st.lists(st.integers(min_value=-2, max_value=9), min_size=1, max_size=10),
    st.integers(min_value=2, max_value=10),         # num_epochs
)


class TestScheduleInvariants:
    @given(inputs=plan_inputs)
    @settings(max_examples=200, deadline=None)
    def test_awake_counts_stay_clamped(self, inputs):
        num_servers, min_awake, latency, targets, num_epochs = inputs
        _, _, schedule = _plan(num_servers, min_awake, latency, targets, num_epochs)
        floor = min(min_awake, num_servers)
        assert len(schedule.awake_counts) == schedule.num_epochs == num_epochs
        for count in schedule.awake_counts:
            assert floor <= count <= num_servers

    @given(inputs=plan_inputs)
    @settings(max_examples=200, deadline=None)
    def test_regimes_tile_time_and_respect_the_floor(self, inputs):
        num_servers, min_awake, latency, targets, num_epochs = inputs
        _, _, schedule = _plan(num_servers, min_awake, latency, targets, num_epochs)
        floor = min(min_awake, num_servers)
        assert schedule.regimes[0][0] == 0.0
        assert math.isinf(schedule.regimes[-1][1])
        for (_, end, members), (start, _, _) in zip(
            schedule.regimes, schedule.regimes[1:]
        ):
            assert end == start, "regimes must be contiguous"
        for _, _, members in schedule.regimes:
            assert len(members) >= floor, "serviceable set fell below min_awake"
            assert len(set(members)) == len(members)
            assert all(0 <= m < num_servers for m in members)

    @given(inputs=plan_inputs)
    @settings(max_examples=200, deadline=None)
    def test_wake_counts_match_the_transition_log(self, inputs):
        num_servers, min_awake, latency, targets, num_epochs = inputs
        _, _, schedule = _plan(num_servers, min_awake, latency, targets, num_epochs)
        wakes = sum(1 for _, _, kind in schedule.transitions if kind == "wake")
        parks = sum(1 for _, _, kind in schedule.transitions if kind == "park")
        assert sum(schedule.wake_counts) == wakes
        assert wakes + parks == len(schedule.transitions)
        # A server is parked at most for the whole horizon.
        for parked in schedule.parked_seconds:
            assert 0.0 <= parked <= schedule.horizon

    @given(inputs=plan_inputs)
    @settings(max_examples=200, deadline=None)
    def test_setup_energy_is_transitions_times_cost(self, inputs):
        num_servers, min_awake, latency, targets, num_epochs = inputs
        controller, _, schedule = _plan(
            num_servers, min_awake, latency, targets, num_epochs
        )
        peak = 250.0
        expected = sum(schedule.wake_counts) * controller.setup.transition_energy(peak)
        total = sum(
            schedule.wake_counts[i] * controller.setup.transition_energy(peak)
            for i in range(num_servers)
        )
        assert total == pytest.approx(expected, rel=1e-12)
        assert total == pytest.approx(
            sum(1 for _, _, kind in schedule.transitions if kind == "wake")
            * latency
            * peak,
            rel=1e-12,
            abs=1e-9,
        )


class TestAssignmentInvariants:
    @given(inputs=plan_inputs, seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=150, deadline=None)
    def test_every_job_lands_on_a_serviceable_server(self, inputs, seed):
        num_servers, min_awake, latency, targets, num_epochs = inputs
        _, trace, schedule = _plan(num_servers, min_awake, latency, targets, num_epochs)
        for dispatcher in (LeastLoadedDispatcher(), RandomDispatcher(seed=seed)):
            assignment = controller_assignment(
                trace, dispatcher, schedule, num_servers=num_servers
            )
            # Job conservation: every job assigned, exactly once, in range.
            assert assignment.shape == (len(trace),)
            assert assignment.min() >= 0
            assert assignment.max() < num_servers
            for arrival, server in zip(trace.arrival_times, assignment):
                members = schedule.serviceable_at(float(arrival))
                assert int(server) in members, (
                    f"job at t={arrival} routed to non-serviceable "
                    f"server {server} (serviceable: {members})"
                )


energies = st.floats(min_value=0.0, max_value=1e9, allow_nan=False)
spans = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)


class TestProratedIdleEnergy:
    @given(energy=energies, duration=spans, horizon=spans, covered=spans)
    @settings(max_examples=300, deadline=None)
    def test_closed_form(self, energy, duration, horizon, covered):
        value = prorated_idle_energy(
            energy, duration, horizon, already_covered=covered
        )
        remaining = horizon - covered
        if remaining <= 0 or duration <= 0:
            assert value == 0.0
        else:
            assert value == energy / duration * remaining
        assert value >= 0.0

    @given(energy=energies, duration=spans, horizon=spans, covered=spans,
           extra=spans)
    @settings(max_examples=300, deadline=None)
    def test_covering_more_never_charges_more(
        self, energy, duration, horizon, covered, extra
    ):
        less = prorated_idle_energy(energy, duration, horizon,
                                    already_covered=covered)
        more = prorated_idle_energy(energy, duration, horizon,
                                    already_covered=covered + extra)
        assert more <= less

    @given(energy=energies, duration=spans, horizon=spans)
    @settings(max_examples=300, deadline=None)
    def test_default_matches_the_historical_behaviour(
        self, energy, duration, horizon
    ):
        value = prorated_idle_energy(energy, duration, horizon)
        if duration <= 0 or horizon <= 0:
            assert value == 0.0
        else:
            assert value == energy / duration * horizon


# ---------------------------------------------------------------------------
# Farm-level invariants (real runs: few, small examples)
# ---------------------------------------------------------------------------

_POWER = xeon_power_model()
_SPEC = dns_workload()


def _xeon_strategy():
    return sleepscale_strategy(
        _POWER,
        mean_qos_from_baseline(0.8),
        characterization_jobs=300,
        seed=0,
    )


def _xeon_predictor():
    return LmsCusumPredictor(history=10)


def _base_farm(dispatcher):
    servers = tuple(
        ServerSpec(
            name=f"xeon-{index}",
            power_model=_POWER,
            strategy_factory=_xeon_strategy,
            predictor_factory=_xeon_predictor,
            config=RuntimeConfig(epoch_minutes=1.0, rho_b=0.8),
        )
        for index in range(2)
    )
    return ServerFarm(servers=servers, spec=_SPEC, dispatcher=dispatcher)


class TestFarmEnergyClosure:
    @given(
        targets=st.lists(
            st.integers(min_value=1, max_value=2), min_size=3, max_size=6
        ),
        latency=st.floats(min_value=0.0, max_value=90.0),
    )
    @settings(max_examples=8, deadline=None)
    def test_active_plus_idle_plus_setup_is_total(self, targets, latency):
        num_epochs = len(targets) + 1
        trace = _trace_over(num_epochs)
        controller = FarmController(
            policy=ScriptedPolicy(targets),
            setup=SetupModel(latency_s=latency),
            min_awake=1,
            epoch_minutes=1.0,
        )
        farm = dataclasses.replace(
            _base_farm(LeastLoadedDispatcher()), controller=controller
        )
        result = farm.run(trace)
        active = sum(r.total_energy for r in result.per_server if r is not None)
        assert result.total_energy == pytest.approx(
            active + sum(result.idle_energies) + result.setup_energy,
            rel=1e-12,
        )
        # Setup bill closes against an independent re-plan (pure function).
        schedule = controller.plan(
            trace.arrival_times,
            trace.service_demands,
            num_servers=2,
            epoch_seconds=_EPOCH_SECONDS,
        )
        expected_setup = sum(
            schedule.wake_counts[i]
            * controller.setup.transition_energy(_POWER.peak_power())
            for i in range(2)
        )
        assert result.setup_energy == pytest.approx(expected_setup, rel=1e-12)
        assert result.awake_counts == schedule.awake_counts
        assert result.wake_transitions == schedule.transitions


class TestParkedSpanChargedOnce:
    """The double-count regression: a server parked mid-run that the
    dispatcher never routes to is charged deep-sleep power for the parked
    span and sleep-walk proration for the remainder — each second exactly
    once, never under both rates."""

    @given(
        park_epoch=st.integers(min_value=1, max_value=4),
        tail_epochs=st.integers(min_value=1, max_value=3),
        latency=st.floats(min_value=0.0, max_value=45.0),
    )
    @settings(max_examples=10, deadline=None)
    def test_parked_span_charged_exactly_once(
        self, park_epoch, tail_epochs, latency
    ):
        num_epochs = park_epoch + tail_epochs + 1
        trace = _trace_over(num_epochs)
        # All traffic pinned to server 0, so server 1 is never routed to in
        # either run and its idle charge is directly comparable.
        dispatcher = RandomDispatcher(seed=0, weights=(1.0, 0.0))
        plain = _base_farm(dispatcher)
        uncontrolled = plain.run(trace)
        sleep_walk_full = uncontrolled.idle_energies[1]
        horizon = max(
            r.total_duration for r in uncontrolled.per_server if r is not None
        )
        assert sleep_walk_full > 0.0

        targets = [2] * (park_epoch - 1) + [1]
        controller = FarmController(
            policy=ScriptedPolicy(targets),
            setup=SetupModel(latency_s=latency),
            min_awake=1,
            epoch_minutes=1.0,
        )
        controlled = dataclasses.replace(plain, controller=controller).run(trace)
        schedule = controller.plan(
            trace.arrival_times,
            trace.service_demands,
            num_servers=2,
            epoch_seconds=_EPOCH_SECONDS,
        )
        covered = min(max(schedule.parked_seconds[1], 0.0), horizon)
        assert covered == pytest.approx(
            schedule.horizon - park_epoch * _EPOCH_SECONDS
        )
        parked_power = _POWER.system_power(PARKED_STATE)
        expected = (
            sleep_walk_full * (horizon - covered) / horizon
            + parked_power * covered
        )
        assert controlled.idle_energies[1] == pytest.approx(expected, rel=1e-9)
        # The pre-fix behaviour billed the sleep walk over the FULL horizon
        # on top of the parked charge; pin that the charge is strictly less.
        double_billed = sleep_walk_full + parked_power * covered
        assert controlled.idle_energies[1] < double_billed

    def test_park_at_first_boundary_uses_deep_sleep_rate_only(self):
        """Parked for (almost) the whole run: the idle charge approaches
        pure deep-sleep power, far below the shallow sleep-walk rate."""
        trace = _trace_over(6)
        dispatcher = RandomDispatcher(seed=0, weights=(1.0, 0.0))
        plain = _base_farm(dispatcher)
        uncontrolled = plain.run(trace)
        controller = FarmController(
            policy=ScriptedPolicy([1]), setup=SetupModel.free(), min_awake=1,
            epoch_minutes=1.0,
        )
        controlled = dataclasses.replace(plain, controller=controller).run(trace)
        assert controlled.idle_energies[1] < uncontrolled.idle_energies[1]
