"""Job dispatchers for multi-server farms.

The paper's conclusion sketches the scale-out direction: "studying SleepScale
on multi-core, multi-server systems ... SleepScale can be performed on each
core or server independently."  The substrate needed for that study is a way
to split one arrival stream across ``n`` servers; each server then runs its
own independent SleepScale instance.

Two stateless dispatchers are provided:

* :class:`RoundRobinDispatcher` — deterministic 1-in-``n`` splitting, the
  classic front-end load balancer;
* :class:`RandomDispatcher` — independent uniform (or weighted) random
  assignment, which preserves Poisson arrival statistics per server and is
  therefore the natural match for the idealised analysis.

Both return per-server :class:`~repro.workloads.jobs.JobTrace` objects with
absolute arrival times preserved, so the per-server runtimes stay aligned on
a common clock.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError, TraceError
from repro.workloads.jobs import JobTrace


class JobDispatcher(abc.ABC):
    """Splits one job stream into per-server streams."""

    @abc.abstractmethod
    def assign(self, jobs: JobTrace, num_servers: int) -> np.ndarray:
        """Return the server index (0-based) for every job in *jobs*."""

    def dispatch(self, jobs: JobTrace, num_servers: int) -> list[JobTrace | None]:
        """Split *jobs* into ``num_servers`` traces (``None`` for idle servers)."""
        if num_servers < 1:
            raise ConfigurationError(
                f"a farm needs at least one server, got {num_servers}"
            )
        assignment = np.asarray(self.assign(jobs, num_servers))
        if assignment.shape != (len(jobs),):
            raise ConfigurationError(
                "dispatcher returned an assignment of the wrong shape"
            )
        if assignment.min(initial=0) < 0 or assignment.max(initial=0) >= num_servers:
            raise ConfigurationError("dispatcher assigned a job to a non-existent server")
        streams: list[JobTrace | None] = []
        for server in range(num_servers):
            mask = assignment == server
            if not np.any(mask):
                streams.append(None)
                continue
            streams.append(
                JobTrace(jobs.arrival_times[mask], jobs.service_demands[mask])
            )
        return streams


class RoundRobinDispatcher(JobDispatcher):
    """Assign job *i* to server ``i mod n`` (deterministic, perfectly balanced)."""

    def assign(self, jobs: JobTrace, num_servers: int) -> np.ndarray:
        return np.arange(len(jobs)) % num_servers


class RandomDispatcher(JobDispatcher):
    """Assign each job to an independently sampled server.

    Parameters
    ----------
    seed:
        Seed for the assignment; runs with the same seed split identically.
    weights:
        Optional per-server probabilities (normalised internally); uniform
        when omitted.  Weighted dispatch models heterogeneous farms where
        faster servers take a larger share of the traffic.
    """

    def __init__(self, seed: int | None = 0, weights: Sequence[float] | None = None):
        self._seed = seed
        self._weights = None if weights is None else np.asarray(weights, dtype=float)
        if self._weights is not None:
            if np.any(self._weights < 0) or self._weights.sum() <= 0:
                raise ConfigurationError("dispatch weights must be non-negative and not all zero")

    def assign(self, jobs: JobTrace, num_servers: int) -> np.ndarray:
        rng = np.random.default_rng(self._seed)
        if self._weights is None:
            probabilities = np.full(num_servers, 1.0 / num_servers)
        else:
            if self._weights.size != num_servers:
                raise ConfigurationError(
                    f"got {self._weights.size} weights for {num_servers} servers"
                )
            probabilities = self._weights / self._weights.sum()
        return rng.choice(num_servers, size=len(jobs), p=probabilities)


def merge_streams(streams: Sequence[JobTrace | None]) -> JobTrace:
    """Recombine per-server streams into one chronologically ordered trace.

    Useful for checking that a dispatch was lossless (round-tripping a split)
    and for computing farm-level offered load.
    """
    arrivals: list[np.ndarray] = []
    demands: list[np.ndarray] = []
    for stream in streams:
        if stream is None:
            continue
        arrivals.append(np.asarray(stream.arrival_times))
        demands.append(np.asarray(stream.service_demands))
    if not arrivals:
        raise TraceError("cannot merge an entirely empty set of streams")
    all_arrivals = np.concatenate(arrivals)
    all_demands = np.concatenate(demands)
    order = np.argsort(all_arrivals, kind="stable")
    return JobTrace(all_arrivals[order], all_demands[order])
