"""Multi-server scale-out substrate (the paper's future-work direction)."""

from repro.cluster.dispatch import (
    JobDispatcher,
    RandomDispatcher,
    RoundRobinDispatcher,
    merge_streams,
)
from repro.cluster.farm import ClusterRuntime, FarmResult

__all__ = [
    "ClusterRuntime",
    "FarmResult",
    "JobDispatcher",
    "RandomDispatcher",
    "RoundRobinDispatcher",
    "merge_streams",
]
