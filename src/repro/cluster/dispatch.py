"""Job dispatchers for multi-server farms.

The paper's conclusion sketches the scale-out direction: "studying SleepScale
on multi-core, multi-server systems ... SleepScale can be performed on each
core or server independently."  The substrate needed for that study is a way
to split one arrival stream across ``n`` servers; each server then runs its
own independent SleepScale instance.

Two *stateless* dispatchers model classic front-end load balancers:

* :class:`RoundRobinDispatcher` — deterministic 1-in-``n`` splitting;
* :class:`RandomDispatcher` — independent uniform (or weighted) random
  assignment, which preserves Poisson arrival statistics per server and is
  therefore the natural match for the idealised analysis.

Two *work-tracking* dispatchers model smarter front ends.  Both estimate each
server's outstanding backlog from the nominal service demands of the jobs
already routed to it (the front end cannot observe the servers' DVFS settings
or sleep states, so the estimate assumes full-frequency service — consistent
across servers and sufficient for ranking):

* :class:`LeastLoadedDispatcher` — join-the-least-work queue: each arriving
  job goes to the server with the smallest estimated backlog, which means an
  idle server is *always* preferred over a busy one (no idle-server
  starvation);
* :class:`PowerAwareDispatcher` — packing for energy proportionality: servers
  are ranked by power-efficiency and each job goes to the most efficient
  server whose backlog is below a threshold, so inefficient servers only wake
  up under pressure and can otherwise sit in deep sleep.

All dispatchers return per-server :class:`~repro.workloads.jobs.JobTrace`
objects with absolute arrival times preserved, so the per-server runtimes
stay aligned on a common clock.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.exceptions import ConfigurationError, TraceError
from repro.workloads.jobs import JobTrace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (farm imports dispatch)
    from repro.power.platform import ServerPowerModel


class JobDispatcher(abc.ABC):
    """Splits one job stream into per-server streams."""

    @abc.abstractmethod
    def assign(self, jobs: JobTrace, num_servers: int) -> np.ndarray:
        """Return the server index (0-based) for every job in *jobs*."""

    def dispatch(self, jobs: JobTrace, num_servers: int) -> list[JobTrace | None]:
        """Split *jobs* into ``num_servers`` traces (``None`` for idle servers)."""
        if num_servers < 1:
            raise ConfigurationError(
                f"a farm needs at least one server, got {num_servers}"
            )
        assignment = np.asarray(self.assign(jobs, num_servers))
        if assignment.shape != (len(jobs),):
            raise ConfigurationError(
                "dispatcher returned an assignment of the wrong shape"
            )
        if assignment.min(initial=0) < 0 or assignment.max(initial=0) >= num_servers:
            raise ConfigurationError("dispatcher assigned a job to a non-existent server")
        streams: list[JobTrace | None] = []
        for server in range(num_servers):
            mask = assignment == server
            if not np.any(mask):
                streams.append(None)
                continue
            streams.append(
                JobTrace(jobs.arrival_times[mask], jobs.service_demands[mask])
            )
        return streams


class RoundRobinDispatcher(JobDispatcher):
    """Assign job *i* to server ``i mod n`` (deterministic, perfectly balanced)."""

    def assign(self, jobs: JobTrace, num_servers: int) -> np.ndarray:
        return np.arange(len(jobs)) % num_servers


class RandomDispatcher(JobDispatcher):
    """Assign each job to an independently sampled server.

    Parameters
    ----------
    seed:
        Seed for the assignment; runs with the same seed split identically.
    weights:
        Optional per-server probabilities (normalised internally); uniform
        when omitted.  Weighted dispatch models heterogeneous farms where
        faster servers take a larger share of the traffic.
    """

    def __init__(self, seed: int | None = 0, weights: Sequence[float] | None = None):
        self._seed = seed
        self._weights = None if weights is None else np.asarray(weights, dtype=float)
        if self._weights is not None:
            if np.any(self._weights < 0) or self._weights.sum() <= 0:
                raise ConfigurationError("dispatch weights must be non-negative and not all zero")

    def assign(self, jobs: JobTrace, num_servers: int) -> np.ndarray:
        rng = np.random.default_rng(self._seed)
        if self._weights is None:
            probabilities = np.full(num_servers, 1.0 / num_servers)
        else:
            if self._weights.size != num_servers:
                raise ConfigurationError(
                    f"got {self._weights.size} weights for {num_servers} servers"
                )
            probabilities = self._weights / self._weights.sum()
        return rng.choice(num_servers, size=len(jobs), p=probabilities)


class LeastLoadedDispatcher(JobDispatcher):
    """Assign each job to the server with the least estimated outstanding work.

    The dispatcher replays the arrival stream once, tracking for every server
    the time it would finish its assigned work at full frequency.  Each job
    goes to the server with the smallest backlog at its arrival instant; idle
    servers have negative backlog (they finished some time ago), so when any
    server is idle the job *always* lands on an idle one — the longest-idle
    first, which also breaks ties deterministically.
    """

    def assign(self, jobs: JobTrace, num_servers: int) -> np.ndarray:
        # Scalar Python state: per-job ndarray construction would dominate
        # the loop (server counts are tiny, job counts reach the 100k range).
        arrivals = jobs.arrival_times.tolist()
        demands = jobs.service_demands.tolist()
        busy_until = [0.0] * num_servers
        assignment = np.empty(len(arrivals), dtype=np.int64)
        for index, (arrival, demand) in enumerate(zip(arrivals, demands)):
            server = busy_until.index(min(busy_until))
            assignment[index] = server
            busy_until[server] = max(busy_until[server], arrival) + demand
        return assignment


class PowerAwareDispatcher(JobDispatcher):
    """Pack jobs onto the most power-efficient servers first.

    Servers are ranked by *idle_powers* — the power each platform burns just
    for being awake, the natural cost of keeping a server out of deep sleep.
    Each arriving job goes to the most efficient server whose estimated
    backlog (full-frequency work already routed to it and not yet finished)
    is below *max_backlog* seconds; when every efficient server is saturated
    the job falls back to the globally least-loaded server.  The effect on a
    heterogeneous farm is energy proportionality at the farm level: the
    low-power platforms absorb the base load and the power-hungry ones only
    wake under pressure.

    Parameters
    ----------
    idle_powers:
        One idle power (watts) per server, in server-index order.  Lower is
        preferred.  Build from power models with :meth:`from_power_models`.
    max_backlog:
        Backlog threshold in seconds of work.  ``None`` (default) derives
        ``4 x`` the dispatched trace's mean service demand at dispatch time,
        which adapts the packing pressure to the workload's job size.
    """

    def __init__(
        self,
        idle_powers: Sequence[float],
        max_backlog: float | None = None,
    ):
        self._idle_powers = np.asarray(idle_powers, dtype=float)
        if self._idle_powers.ndim != 1 or self._idle_powers.size == 0:
            raise ConfigurationError("idle_powers must be a non-empty 1-D sequence")
        if np.any(self._idle_powers < 0) or not np.all(np.isfinite(self._idle_powers)):
            raise ConfigurationError("idle powers must be finite and non-negative")
        if max_backlog is not None and max_backlog <= 0:
            raise ConfigurationError(
                f"max_backlog must be positive, got {max_backlog}"
            )
        self._max_backlog = max_backlog
        # Stable sort: equally efficient servers keep index order.
        self._ranking = np.argsort(self._idle_powers, kind="stable")

    @classmethod
    def from_power_models(
        cls,
        power_models: Sequence["ServerPowerModel"],
        max_backlog: float | None = None,
    ) -> "PowerAwareDispatcher":
        """Rank servers by their operating-idle power ``C0(i)S0(i)``."""
        return cls(
            [model.idle_power(1.0) for model in power_models],
            max_backlog=max_backlog,
        )

    def assign(self, jobs: JobTrace, num_servers: int) -> np.ndarray:
        if self._idle_powers.size != num_servers:
            raise ConfigurationError(
                f"got {self._idle_powers.size} idle powers for {num_servers} servers"
            )
        arrivals = jobs.arrival_times.tolist()
        demands = jobs.service_demands.tolist()
        threshold = self._max_backlog
        if threshold is None:
            mean_demand = jobs.mean_service_demand
            threshold = 4.0 * mean_demand if mean_demand > 0 else 1.0
        ranking = self._ranking.tolist()
        # Scalar Python state (see LeastLoadedDispatcher.assign): backlog for
        # a candidate is max(busy_until - arrival, 0), evaluated lazily.
        busy_until = [0.0] * num_servers
        assignment = np.empty(len(arrivals), dtype=np.int64)
        for index, (arrival, demand) in enumerate(zip(arrivals, demands)):
            cutoff = arrival + threshold
            for candidate in ranking:
                if busy_until[candidate] <= cutoff:
                    server = candidate
                    break
            else:
                server = busy_until.index(min(busy_until))
            assignment[index] = server
            busy_until[server] = max(busy_until[server], arrival) + demand
        return assignment


def merge_streams(streams: Sequence[JobTrace | None]) -> JobTrace:
    """Recombine per-server streams into one chronologically ordered trace.

    Useful for checking that a dispatch was lossless (round-tripping a split)
    and for computing farm-level offered load.
    """
    arrivals: list[np.ndarray] = []
    demands: list[np.ndarray] = []
    for stream in streams:
        if stream is None:
            continue
        arrivals.append(np.asarray(stream.arrival_times))
        demands.append(np.asarray(stream.service_demands))
    if not arrivals:
        raise TraceError("cannot merge an entirely empty set of streams")
    all_arrivals = np.concatenate(arrivals)
    all_demands = np.concatenate(demands)
    order = np.argsort(all_arrivals, kind="stable")
    return JobTrace(all_arrivals[order], all_demands[order])
