"""Figure-as-campaign parity: campaign cells == the direct experiment run.

The migration contract for the campaign refactor: every registered
campaign, run cell by cell, must reproduce exactly the rows the direct
``run_experiment`` call produces — at fast-mode size, for every
``figure*``/``table*``/``ablation-*`` decomposition and for the scenario
campaign.  Cells are concatenated in cell order; for figure6 the direct
loop interleaves its axes differently, so the comparison is as a
multiset (same rows, cell-major order).
"""

from __future__ import annotations

import json

import pytest

from repro.campaigns import CampaignStore, campaign_results, run_campaign
from repro.campaigns.spec import canonical_json, split_scenario_params
from repro.experiments import runner
from repro.experiments.base import ExperimentConfig
from repro.experiments.report import jsonify_rows
from repro.experiments.scenario_runner import run_scenario

#: Reduced sizing shared by the campaign spec and the direct run.
TINY = {"num_jobs": 300, "frequency_step": 0.2}

#: Campaigns whose cell decomposition reorders rows relative to the
#: direct loop (same rows, different interleaving).
UNORDERED = {"figure6"}

EXPERIMENT_CAMPAIGNS = [
    name for name, spec in runner.CAMPAIGNS.items() if spec.kind == "experiment"
]


@pytest.mark.parametrize("name", EXPERIMENT_CAMPAIGNS)
def test_campaign_cells_reproduce_direct_rows(name, tmp_path):
    spec = runner.CAMPAIGNS[name].replace(**TINY)
    assert len(spec.seeds) == 1

    outcome = run_campaign(spec, tmp_path, executor="serial")
    assert outcome.completed
    records = campaign_results(CampaignStore(tmp_path), spec)
    cell_rows = [row for record in records for row in record["result"]["rows"]]

    config = ExperimentConfig(fast=spec.fast, seed=spec.seeds[0], **TINY)
    direct_rows = jsonify_rows(runner.run_experiment(spec.target, config).rows)

    if name in UNORDERED:
        assert sorted(cell_rows, key=canonical_json) == sorted(
            direct_rows, key=canonical_json
        )
    else:
        assert cell_rows == direct_rows


def test_scenario_campaign_cells_reproduce_direct_reports(tmp_path):
    spec = runner.CAMPAIGNS["scenario-diurnal"]
    assert spec.kind == "scenario"

    outcome = run_campaign(spec, tmp_path, executor="serial")
    assert outcome.completed
    records = campaign_results(CampaignStore(tmp_path), spec)

    for cell, record in zip(spec.cells(), records, strict=True):
        knobs, overrides = split_scenario_params(cell.params)
        direct = run_scenario(
            spec.target,
            seed=cell.seed,
            backend=knobs.get("backend", spec.backend),
            search=knobs.get("search", spec.search),
            controller=knobs.get("controller"),
            overrides=overrides,
        )
        assert record["result"] == json.loads(json.dumps(direct))


def test_every_registered_campaign_targets_a_registered_surface():
    for name, spec in runner.CAMPAIGNS.items():
        assert name == spec.name
        if spec.kind == "experiment":
            assert spec.target in runner.EXPERIMENTS, name
