"""Tests for the power-management strategies of the Figure 9 comparison."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.qos import mean_qos_from_baseline
from repro.core.strategies import (
    EpochContext,
    FixedPolicyStrategy,
    PolicySearchStrategy,
    RaceToHaltStrategy,
    dvfs_only_strategy,
    figure9_strategies,
    race_to_halt_c3,
    race_to_halt_c6,
    sleepscale_single_state_strategy,
    sleepscale_strategy,
)
from repro.exceptions import ConfigurationError
from repro.policies.policy import race_to_halt_policy
from repro.policies.space import full_space
from repro.power.states import C3_S0I, C6_S0I
from repro.workloads.generator import generate_jobs
from repro.workloads.jobs import JobTrace


@pytest.fixture()
def qos():
    return mean_qos_from_baseline(0.8)


@pytest.fixture()
def context(dns_empirical):
    return EpochContext(predicted_utilization=0.3, spec=dns_empirical)


class TestEpochContext:
    def test_valid(self, dns_empirical):
        EpochContext(predicted_utilization=0.0, spec=dns_empirical)
        EpochContext(predicted_utilization=1.0, spec=dns_empirical)

    def test_invalid_utilization(self, dns_empirical):
        with pytest.raises(ConfigurationError):
            EpochContext(predicted_utilization=1.5, spec=dns_empirical)


class TestRaceToHalt:
    def test_always_full_speed(self, xeon, context):
        strategy = race_to_halt_c6(xeon)
        policy = strategy.select_policy(context)
        assert policy.frequency == 1.0
        assert policy.sleep_state_name == "C6S0(i)"
        assert strategy.name == "R2H(C6)"

    def test_c3_variant(self, xeon, context):
        strategy = race_to_halt_c3(xeon)
        assert strategy.select_policy(context).sleep_state_name == "C3S0(i)"
        assert strategy.name == "R2H(C3)"

    def test_policy_is_independent_of_prediction(self, xeon, dns_empirical):
        strategy = RaceToHaltStrategy(xeon, C6_S0I)
        low = strategy.select_policy(
            EpochContext(predicted_utilization=0.05, spec=dns_empirical)
        )
        high = strategy.select_policy(
            EpochContext(predicted_utilization=0.9, spec=dns_empirical)
        )
        assert low is high


class TestFixedPolicy:
    def test_returns_supplied_policy(self, xeon, context):
        policy = race_to_halt_policy(xeon, C3_S0I)
        strategy = FixedPolicyStrategy(policy, name="pinned")
        assert strategy.select_policy(context) is policy
        assert strategy.name == "pinned"
        assert strategy.describe() == "pinned"


class TestPolicySearchStrategies:
    def test_sleepscale_selects_stable_feasible_policy(self, xeon, qos, context):
        strategy = sleepscale_strategy(xeon, qos, characterization_jobs=800, seed=1)
        policy = strategy.select_policy(context)
        assert policy.frequency > 0.3
        assert strategy.last_selection is not None
        assert strategy.last_selection.feasible

    def test_sleepscale_uses_logged_jobs_when_available(self, xeon, qos, dns_empirical):
        strategy = sleepscale_strategy(xeon, qos, characterization_jobs=800, seed=1)
        logged = generate_jobs(dns_empirical, num_jobs=800, utilization=0.5, seed=2)
        context = EpochContext(
            predicted_utilization=0.5, spec=dns_empirical, logged_jobs=logged
        )
        policy = strategy.select_policy(context)
        assert policy.frequency > 0.5

    def test_single_state_strategy_restricts_state(self, xeon, qos, context):
        strategy = sleepscale_single_state_strategy(
            xeon, qos, C3_S0I, characterization_jobs=800, seed=1
        )
        policy = strategy.select_policy(context)
        assert policy.sleep_state_name == "C3S0(i)"
        assert strategy.name == "SS(C3)"

    def test_dvfs_only_strategy_never_sleeps(self, xeon, qos, context):
        strategy = dvfs_only_strategy(xeon, qos, characterization_jobs=800, seed=1)
        policy = strategy.select_policy(context)
        assert policy.sleep[0].power == pytest.approx(
            xeon.active_power(policy.frequency)
        )
        assert strategy.name == "DVFS"

    def test_higher_predicted_load_selects_higher_frequency(self, xeon, qos, dns_empirical):
        strategy = sleepscale_strategy(xeon, qos, characterization_jobs=800, seed=4)
        low = strategy.select_policy(
            EpochContext(predicted_utilization=0.1, spec=dns_empirical)
        )
        high = strategy.select_policy(
            EpochContext(predicted_utilization=0.7, spec=dns_empirical)
        )
        assert high.frequency > low.frequency

    def test_over_long_log_keeps_most_recent_jobs(self, xeon, qos, dns_empirical):
        """Regression: ``head()`` kept the *oldest* slice of a long log.

        The paper rescales the log of recent epochs; when the log window
        exceeds ``max_logged_jobs`` the strategy must characterise against
        the most recent tail, not the stalest prefix.  The two halves of
        this log carry distinct demand signatures, so the selected slice is
        identifiable from the characterisation trace alone.
        """
        old_half = JobTrace(
            np.arange(500) * 0.02, np.full(500, 0.004)  # old: tiny jobs
        )
        new_half = JobTrace(
            10.0 + np.arange(500) * 0.02, np.full(500, 0.2)  # recent: big jobs
        )
        logged = JobTrace(
            np.concatenate([old_half.arrival_times, new_half.arrival_times]),
            np.concatenate([old_half.service_demands, new_half.service_demands]),
        )
        strategy = PolicySearchStrategy(
            name="SS",
            power_model=xeon,
            space=full_space(xeon, frequency_step=0.1),
            qos=qos,
            max_logged_jobs=500,
            seed=0,
        )
        context = EpochContext(
            predicted_utilization=0.4, spec=dns_empirical, logged_jobs=logged
        )
        characterization = strategy._characterization_jobs_for(context)
        assert len(characterization) == 500
        # Rescaling changes arrival times but never demands: the recent
        # half's signature must survive unchanged.
        assert np.all(characterization.service_demands == 0.2)

    def test_extreme_prediction_is_clamped(self, xeon, qos, dns_empirical):
        strategy = sleepscale_strategy(xeon, qos, characterization_jobs=400, seed=4)
        policy = strategy.select_policy(
            EpochContext(predicted_utilization=1.0, spec=dns_empirical)
        )
        assert 0.0 < policy.frequency <= 1.0

    def test_sleepscale_no_costlier_than_restricted_variants(
        self, xeon, qos, dns_empirical
    ):
        """Searching the full joint space can only improve on a restricted space."""
        logged = generate_jobs(dns_empirical, num_jobs=2_000, utilization=0.3, seed=6)
        context = EpochContext(
            predicted_utilization=0.3, spec=dns_empirical, logged_jobs=logged
        )
        full = sleepscale_strategy(xeon, qos, characterization_jobs=800, seed=6)
        restricted = sleepscale_single_state_strategy(
            xeon, qos, C3_S0I, characterization_jobs=800, seed=6
        )
        full.select_policy(context)
        restricted.select_policy(context)
        assert (
            full.last_selection.best.average_power
            <= restricted.last_selection.best.average_power + 1e-9
        )


class TestFigure9Factory:
    def test_five_strategies_in_paper_order(self, xeon, qos):
        strategies = figure9_strategies(xeon, qos, characterization_jobs=400)
        assert [s.name for s in strategies] == [
            "SS",
            "SS(C3)",
            "DVFS",
            "R2H(C3)",
            "R2H(C6)",
        ]

    def test_search_strategies_share_interface(self, xeon, qos, context):
        for strategy in figure9_strategies(xeon, qos, characterization_jobs=300):
            policy = strategy.select_policy(context)
            assert 0.0 < policy.frequency <= 1.0
            assert isinstance(strategy, (PolicySearchStrategy, RaceToHaltStrategy))
