"""Benchmark reproducing Figure 10: distribution of selected low-power states."""

from __future__ import annotations

import pytest

from conftest import run_once
from repro.experiments import figure10
from repro.power.states import LOW_POWER_STATES


@pytest.mark.benchmark(group="runtime-figures")
def test_bench_figure10_state_distribution(benchmark, experiment_config, record_result):
    result = run_once(benchmark, figure10.run, experiment_config)
    record_result(result)

    state_names = [state.name for state in LOW_POWER_STATES]

    # Every configuration's selection fractions are a proper distribution.
    for row in result.rows:
        fractions = [row[name] for name in state_names]
        assert sum(fractions) == pytest.approx(1.0)
        assert all(0.0 <= fraction <= 1.0 for fraction in fractions)

    # The low, steady file-server trace is dominated by a single state.
    for row in result.filtered(trace="fs"):
        assert max(row[name] for name in state_names) >= 0.6

    # Across all configurations SleepScale exercises more than one state —
    # there is no one-size-fits-all choice.
    states_used = {
        name
        for row in result.rows
        for name in state_names
        if row[name] > 0.0
    }
    assert len(states_used) >= 2

    # The strongly time-varying email-store trace spreads its selections at
    # least as widely as the file-server trace for the same workload/baseline.
    for workload in set(result.column("workload")):
        for rho_b in result.metadata["rho_bs"]:
            email_rows = result.filtered(trace="es", workload=workload, rho_b=rho_b)
            file_rows = result.filtered(trace="fs", workload=workload, rho_b=rho_b)
            if not email_rows or not file_rows:
                continue
            assert (
                email_rows[0]["num_states_used"] >= file_rows[0]["num_states_used"] - 1
            )

    # Response times stay bounded (the runs are closed-loop SleepScale runs
    # with over-provisioning, so nothing should blow up).
    for row in result.rows:
        assert row["normalized_mean_response_time"] < 30.0
        assert 13.0 < row["average_power_w"] < 250.0
