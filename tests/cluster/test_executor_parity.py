"""Serial / thread / process executors must be result-invisible.

The executor contract for farms (the PR 5 analogue of the backend, dispatch
-engine and search-engine oracle contracts): whichever executor runs the
per-server epoch loops, a farm produces **bit-identical** ``FarmResult``s —
same total energy, same per-server dispatch assignments (hence per-server
response-time arrays), and same per-epoch policy selections.  This suite
pins that across every registered scenario, for ``ClusterRuntime`` farms,
for chunked runs, and for the other ``fan_out`` call sites
(``sweep_states``, ``run_experiments``).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.cluster.farm import ServerFarm, ServerSpec
from repro.cluster.dispatch import LeastLoadedDispatcher
from repro.core.qos import mean_qos_from_baseline
from repro.core.runtime import RuntimeConfig
from repro.core.strategies import sleepscale_strategy
from repro.exceptions import ExecutorError
from repro.experiments.runner import run_experiments
from repro.power.platform import xeon_power_model
from repro.prediction.lms_cusum import LmsCusumPredictor
from repro.scenarios import available_scenarios, get_scenario
from repro.simulation.sweep import sweep_states
from repro.power.states import C1_S0I, C3_S0I
from repro.workloads.generator import generate_jobs
from repro.workloads.spec import dns_workload

#: (executor, max_workers) pairs compared against the serial oracle.
POOLED = (("thread", 2), ("process", 2))


def _floats_identical(left: float, right: float) -> bool:
    if math.isnan(left) and math.isnan(right):
        return True
    return left == right


def _epoch_signature(result):
    return [
        (
            epoch.index,
            epoch.policy_label,
            epoch.sleep_state,
            epoch.selected_frequency,
            epoch.applied_frequency,
            epoch.over_provisioned,
            epoch.num_jobs,
            epoch.energy_joules,
        )
        for epoch in result.epochs
    ]


def assert_farm_results_identical(expected, actual):
    """Bit-identical FarmResults: energy, assignments, selections."""
    assert actual.num_servers == expected.num_servers
    assert actual.total_energy == expected.total_energy
    assert actual.response_time_budget == expected.response_time_budget
    assert actual.idle_energies == expected.idle_energies
    assert actual.server_names == expected.server_names
    for index, (one, other) in enumerate(
        zip(expected.per_server, actual.per_server)
    ):
        assert (one is None) == (other is None), f"server {index} activity"
        if one is None:
            continue
        # Identical response-time arrays imply identical dispatch
        # assignments (each server saw exactly the same sub-stream).
        assert np.array_equal(one.response_times, other.response_times), (
            f"server {index} response times"
        )
        assert one.total_energy == other.total_energy, f"server {index} energy"
        assert _epoch_signature(one) == _epoch_signature(other), (
            f"server {index} per-epoch selections"
        )
        assert _floats_identical(
            one.mean_response_time, other.mean_response_time
        ), f"server {index} mean response time"


def _tiny_overrides(name: str) -> dict:
    """Shrink any scenario to seconds without knowing it by name."""
    declared = get_scenario(name).parameter_defaults()
    overrides: dict = {"duration_minutes": 4}
    for key, small in (
        ("servers", 2),
        ("xeon_servers", 2),
        ("atom_servers", 2),
        ("chunk_jobs", 1000),
    ):
        if key in declared:
            overrides[key] = small
    return overrides


class TestEveryScenarioParity:
    """The equivalence suite the tentpole demands: all registered scenarios."""

    @pytest.fixture(params=sorted(available_scenarios()))
    def name(self, request):
        return request.param

    def test_thread_and_process_match_serial(self, name):
        overrides = _tiny_overrides(name)
        serial = get_scenario(name).build(
            seed=9, executor="serial", **overrides
        )
        oracle = serial.run()
        for executor, workers in POOLED:
            built = get_scenario(name).build(
                seed=9, executor=executor, **overrides
            )
            built.farm.max_workers = workers
            assert_farm_results_identical(oracle, built.run())


def _strategy_for(index: int):
    return sleepscale_strategy(
        xeon_power_model(),
        mean_qos_from_baseline(0.8),
        characterization_jobs=300,
        seed=index,
    )


def _predictor_for(index: int):
    return LmsCusumPredictor(history=10)


class TestClusterRuntimeParity:
    def make_cluster(self, spec, executor=None, workers=None, chunk=None):
        from repro.cluster.farm import ClusterRuntime

        return ClusterRuntime(
            num_servers=3,
            power_model=xeon_power_model(),
            spec=spec,
            strategy_factory=_strategy_for,
            predictor_factory=_predictor_for,
            config=RuntimeConfig(epoch_minutes=1.0, rho_b=0.8),
            max_workers=workers,
            executor=executor,
            chunk_jobs=chunk,
        )

    @pytest.fixture(scope="class")
    def jobs(self):
        return generate_jobs(
            dns_workload(), num_jobs=3000, utilization=0.5, seed=21
        )

    def test_process_matches_serial(self, jobs):
        spec = dns_workload()
        oracle = self.make_cluster(spec).run(jobs)
        sharded = self.make_cluster(spec, executor="process", workers=2).run(jobs)
        assert_farm_results_identical(oracle, sharded)

    def test_chunked_process_matches_chunked_serial(self, jobs):
        """`run(chunk_jobs=)` + process executor: identical results.

        The process path shards whole sub-streams (chunked feeding is a
        memory optimisation, pinned identical to one-shot), so chunked
        serial and chunked process runs must agree bit for bit.
        """
        spec = dns_workload()
        oracle = self.make_cluster(spec, chunk=512).run(jobs)
        sharded = self.make_cluster(
            spec, executor="process", workers=2, chunk=512
        ).run(jobs)
        assert_farm_results_identical(oracle, sharded)

    def test_per_index_factories_pickle(self):
        import pickle

        farm = self.make_cluster(dns_workload()).as_server_farm()
        pickle.dumps(farm.servers[0].strategy_factory)
        pickle.dumps(farm.servers[-1].predictor_factory)


class TestUnpicklableWork:
    def test_lambda_factory_fails_with_clear_error(self):
        spec = dns_workload()
        power = xeon_power_model()
        server = ServerSpec(
            name="bad",
            power_model=power,
            strategy_factory=lambda: _strategy_for(0),
            predictor_factory=lambda: _predictor_for(0),
            config=RuntimeConfig(epoch_minutes=1.0, rho_b=0.8),
        )
        farm = ServerFarm(
            servers=(server,),
            spec=spec,
            dispatcher=LeastLoadedDispatcher(),
            executor="process",
        )
        jobs = generate_jobs(spec, num_jobs=200, utilization=0.3, seed=1)
        with pytest.raises(ExecutorError, match="pickl"):
            farm.run(jobs)

    def test_invalid_executor_rejected_at_construction(self):
        spec = dns_workload()
        server = ServerSpec(
            name="ok",
            power_model=xeon_power_model(),
            strategy_factory=lambda: _strategy_for(0),
            predictor_factory=lambda: _predictor_for(0),
        )
        with pytest.raises(ExecutorError, match="unknown executor"):
            ServerFarm(servers=(server,), spec=spec, executor="gpu")


class TestOtherFanOutSites:
    def test_sweep_states_process_matches_serial(self):
        spec = dns_workload()
        power = xeon_power_model()
        kwargs = dict(num_jobs=600, frequency_step=0.05, seed=5)
        serial = sweep_states(spec, [C1_S0I, C3_S0I], power, 0.3, **kwargs)
        sharded = sweep_states(
            spec,
            [C1_S0I, C3_S0I],
            power,
            0.3,
            executor="process",
            max_workers=2,
            **kwargs,
        )
        assert serial.keys() == sharded.keys()
        for label in serial:
            assert serial[label].points == sharded[label].points

    def test_run_experiments_process_matches_serial(self):
        serial = run_experiments(["table2"])
        sharded = run_experiments(["table2"], executor="process", max_workers=2)
        assert serial["table2"].rows == sharded["table2"].rows


class TestScenarioBuildExecutor:
    def test_build_applies_executor_to_the_farm(self):
        built = get_scenario("diurnal").build(
            executor="process", **_tiny_overrides("diurnal")
        )
        assert built.farm.executor == "process"

    def test_build_rejects_unknown_executor(self):
        with pytest.raises(ExecutorError, match="unknown executor"):
            get_scenario("diurnal").build(executor="gpu")

    def test_run_scenario_rejects_executor_override(self):
        from repro.exceptions import ExperimentError
        from repro.experiments.scenario_runner import run_scenario

        with pytest.raises(ExperimentError, match="executor"):
            run_scenario("diurnal", overrides={"executor": "process"})
