"""The built-in scenario library.

Fourteen scenarios ship with the reproduction, each stressing a different
axis of the joint speed-scaling + sleep-state problem:

========================  ====================================================
``diurnal``               smooth day/night utilisation cycle (the Figure 7
                          regime) on a small homogeneous farm
``flash-crowd``           long quiet baseline interrupted by a sudden burst —
                          the predictor/over-provisioning stress test
``heavy-tail``            Pareto-distributed service times at constant load —
                          the tail-sensitive regime of the Cv discussion
``correlated-arrivals``   two-state Markov-modulated load (sticky bursty/quiet
                          phases), producing autocorrelated arrivals
``multiclass``            DNS-like and Google-like job classes merged into one
                          stream served by a shared farm
``trace-replay``          replay of a stored utilisation trace (the synthetic
                          Figure 7 traces, or any CSV in the same format)
``heterogeneous-farm``    mixed Xeon + Atom fleet behind a power-aware
                          dispatcher — farm-level energy proportionality
``farm-scale``            million-job stream over 16 mixed Xeon/Atom servers,
                          dispatched by the speed-aware heap engine and fed
                          to the per-server epoch loops in chunks
``mega-farm``             64 mixed Xeon/Atom servers with short epochs — the
                          multi-core regime the process executor targets
                          (``run-scenario mega-farm --executor process``)
``autoscale-diurnal``     farm-level right-sizing over a day/night cycle: a
                          ``FarmController`` parks shallow-sleep servers
                          through the trough and wakes them (paying setup
                          costs) as the day ramps up
``autoscale-surge``       right-sizing under a load step: quiet baseline,
                          sudden sustained surge, quiet again — scale-up
                          through the surge, park back down after
``noisy-neighbor``        two tenants on a shared farm: a low-priority flash
                          crowd against a latency-SLA victim — the isolation
                          showcase for the tenant-aware dispatchers
``tenant-surge``          weighted-fair capacity split while one tenant's
                          load surges through the middle third of the run
``priority-inversion``    square-wave batch tenant against a high-priority
                          interactive tenant — repeated predictor-lag
                          overloads that priority dispatch confines
========================  ====================================================

Every builder is deterministic given ``seed``, sizes itself from
``duration_minutes`` so tests can shrink it to seconds, and passes
``backend`` into each server's policy-search strategy so the whole scenario
can be replayed on the reference simulator.

Utilisation convention: trace utilisations are offered load relative to one
full-frequency server, so a farm of ``n`` servers behind a balanced
dispatcher sees roughly ``utilization / n`` per server.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.cluster.controller import (
    CONTROLLER_POLICIES,
    FarmController,
    SetupModel,
)
from repro.cluster.dispatch import (
    JobDispatcher,
    LeastLoadedDispatcher,
    PowerAwareDispatcher,
    RoundRobinDispatcher,
    merge_streams,
)
from repro.cluster.farm import ServerFarm, ServerSpec
from repro.cluster.tenancy import (
    TENANT_DISPATCH_KINDS,
    TENANT_DISPATCH_PRIORITY,
    TENANT_DISPATCH_WEIGHTED_FAIR,
    FarmQos,
    TenantSpec,
    make_tenant_dispatcher,
)
from repro.core.qos import (
    QosConstraint,
    mean_qos_from_baseline,
    percentile_qos_from_baseline,
)
from repro.core.runtime import RuntimeConfig
from repro.core.search import SEARCH_FRONTIER, CharacterizationCache
from repro.core.strategies import (
    PolicySearchStrategy,
    RaceToHaltStrategy,
    sleepscale_strategy,
)
from repro.exceptions import ScenarioError
from repro.power.platform import ServerPowerModel, atom_power_model, xeon_power_model
from repro.power.states import C1_S0I, SystemState
from repro.prediction.lms_cusum import LmsCusumPredictor
from repro.scenarios.base import (
    BuiltScenario,
    ScenarioParameter,
    scenario,
)
from repro.units import minutes
from repro.workloads.distributions import Exponential, Pareto, from_mean_cv
from repro.workloads.generator import generate_trace_driven_jobs
from repro.workloads.jobs import JobTrace
from repro.workloads.spec import (
    WorkloadSpec,
    dns_workload,
    google_workload,
    workload_by_name,
)
from repro.workloads.traces import (
    UtilizationTrace,
    synthetic_email_store_trace,
    synthetic_file_server_trace,
)

#: Peak design utilisation shared by all scenario servers (the paper's 0.8).
_RHO_B = 0.8
#: Per-epoch policy-search sample size; small enough that a scenario runs in
#: seconds, large enough that selections are stable.
_CHARACTERIZATION_JOBS = 600


@dataclass(frozen=True)
class SleepScaleStrategyFactory:
    """Picklable zero-argument factory for a fresh full-SleepScale strategy.

    Scenario servers used to close over their parameters in a ``lambda``;
    a frozen dataclass carrying the same parameters builds the identical
    strategy while surviving pickling, so every built-in scenario can run
    on the process executor (``ServerShardTask`` ships the whole
    :class:`~repro.cluster.farm.ServerSpec`, factories included, to the
    worker processes).
    """

    power_model: ServerPowerModel
    qos: QosConstraint
    characterization_jobs: int
    seed: int
    backend: str
    search: str

    def __call__(self) -> PolicySearchStrategy:
        return sleepscale_strategy(
            self.power_model,
            self.qos,
            characterization_jobs=self.characterization_jobs,
            seed=self.seed,
            backend=self.backend,
            search=self.search,
        )


@dataclass(frozen=True)
class LmsCusumPredictorFactory:
    """Picklable zero-argument factory for a fresh LMS+CUSUM predictor."""

    history: int = 10

    def __call__(self) -> LmsCusumPredictor:
        return LmsCusumPredictor(history=self.history)


def _sleepscale_server(
    name: str,
    power_model: ServerPowerModel,
    *,
    seed: int,
    backend: str,
    search: str = "full",
    epoch_minutes: float = 5.0,
    max_frequency: float = 1.0,
    qos: QosConstraint | None = None,
) -> ServerSpec:
    """A server running full SleepScale with an LMS+CUSUM predictor.

    ``qos`` overrides the default baseline mean-response-time budget; the
    tenant scenarios pass the composite per-tenant constraint here so each
    server's policy search selects against the binding tenant budget.
    """
    if qos is None:
        qos = mean_qos_from_baseline(_RHO_B)
    config = RuntimeConfig(
        epoch_minutes=epoch_minutes, rho_b=_RHO_B, over_provisioning=0.35
    )
    return ServerSpec(
        name=name,
        power_model=power_model,
        strategy_factory=SleepScaleStrategyFactory(
            power_model=power_model,
            qos=qos,
            characterization_jobs=_CHARACTERIZATION_JOBS,
            seed=seed,
            backend=backend,
            search=search,
        ),
        predictor_factory=LmsCusumPredictorFactory(history=10),
        config=config,
        max_frequency=max_frequency,
    )


def _shared_cache(search: str) -> CharacterizationCache | None:
    """One farm-wide characterisation cache for frontier-search scenarios."""
    return CharacterizationCache() if search == SEARCH_FRONTIER else None


def _xeon_farm(
    num_servers: int,
    spec: WorkloadSpec,
    *,
    seed: int,
    backend: str,
    search: str = "full",
    dispatcher: JobDispatcher | None = None,
    epoch_minutes: float = 5.0,
    qos: FarmQos | None = None,
    server_qos: QosConstraint | None = None,
) -> ServerFarm:
    """A homogeneous Xeon farm of SleepScale servers."""
    power_model = xeon_power_model()
    servers = tuple(
        _sleepscale_server(
            f"xeon-{index}",
            power_model,
            seed=seed + index,
            backend=backend,
            search=search,
            epoch_minutes=epoch_minutes,
            qos=server_qos,
        )
        for index in range(num_servers)
    )
    return ServerFarm(
        servers=servers,
        spec=spec,
        dispatcher=dispatcher or RoundRobinDispatcher(),
        search_cache=_shared_cache(search),
        qos=qos,
    )


def _check_duration(duration_minutes: float) -> int:
    if duration_minutes < 1:
        raise ScenarioError(
            f"duration_minutes must be at least 1, got {duration_minutes}"
        )
    return int(round(duration_minutes))


def _diurnal_values(
    num_samples: int, trough_utilization: float, peak_utilization: float
) -> np.ndarray:
    """One raised-cosine day/night cycle spanning *num_samples* minutes."""
    if not 0.0 < trough_utilization <= peak_utilization <= 0.95:
        raise ScenarioError(
            "need 0 < trough_utilization <= peak_utilization <= 0.95, got "
            f"[{trough_utilization}, {peak_utilization}]"
        )
    phase = 2.0 * math.pi * np.arange(num_samples) / num_samples
    return trough_utilization + (peak_utilization - trough_utilization) * 0.5 * (
        1.0 - np.cos(phase)
    )


def _check_servers(num_servers: int) -> int:
    if num_servers != int(num_servers):
        raise ScenarioError(
            f"servers must be a whole number, got {num_servers}"
        )
    if num_servers < 1:
        raise ScenarioError(f"servers must be at least 1, got {num_servers}")
    return int(num_servers)


def _check_dispatcher(kind: str) -> str:
    if kind not in TENANT_DISPATCH_KINDS:
        raise ScenarioError(
            f"dispatcher must be one of {', '.join(TENANT_DISPATCH_KINDS)}, "
            f"got {kind!r}"
        )
    return kind


def _labelled_tenant_jobs(
    spec: WorkloadSpec,
    utilizations: list[np.ndarray],
    *,
    seed: int,
    name: str,
) -> JobTrace:
    """One labelled stream per tenant, merged into a single arrival order.

    Tenant *i*'s jobs are generated from ``utilizations[i]`` with an
    offset seed and labelled ``i``; ``merge_streams`` preserves the labels
    through the merge sort.
    """
    streams = []
    for index, values in enumerate(utilizations):
        trace = UtilizationTrace(
            values, interval=minutes(1), name=f"{name}-tenant-{index}"
        )
        stream = generate_trace_driven_jobs(spec, trace, seed=seed + index).jobs
        streams.append(
            stream.with_tenant_ids(np.full(len(stream), index, dtype=np.int64))
        )
    return merge_streams(streams)


def _tenant_farm(
    num_servers: int,
    spec: WorkloadSpec,
    farm_qos: FarmQos,
    dispatcher: str,
    *,
    seed: int,
    backend: str,
    search: str,
) -> ServerFarm:
    """A homogeneous Xeon farm honouring every tenant's budget.

    The per-server policy search runs against the composite per-tenant
    constraint (met iff every tenant's budget is met), so the binding
    tenant budget — not a collapsed farm-wide one — drives frequency and
    sleep-state selection, and the tenant table fingerprints the search
    cache keys.
    """
    return _xeon_farm(
        num_servers,
        spec,
        seed=seed,
        backend=backend,
        search=search,
        dispatcher=make_tenant_dispatcher(dispatcher, farm_qos.tenants),
        qos=farm_qos,
        server_qos=farm_qos.composite_constraint(),
    )


# ---------------------------------------------------------------------------
# diurnal
# ---------------------------------------------------------------------------


@scenario(
    name="diurnal",
    description=(
        "Smooth day/night utilisation cycle (one full day compressed into the "
        "run) served by a small homogeneous Xeon farm."
    ),
    parameters=(
        ScenarioParameter("duration_minutes", 40, "length of the run; one full day/night cycle is compressed into it"),
        ScenarioParameter("trough_utilization", 0.08, "night-time offered load (relative to one server)"),
        ScenarioParameter("peak_utilization", 0.85, "mid-day offered load (relative to one server)"),
        ScenarioParameter("servers", 2, "number of identical Xeon servers"),
        ScenarioParameter("workload", "dns", "Table 5 workload class: dns, google or mail"),
    ),
)
def build_diurnal(
    *,
    seed: int,
    backend: str,
    search: str,
    duration_minutes: float,
    trough_utilization: float,
    peak_utilization: float,
    servers: int,
    workload: str,
) -> BuiltScenario:
    num_samples = _check_duration(duration_minutes)
    servers = _check_servers(servers)
    spec = workload_by_name(workload)
    values = _diurnal_values(num_samples, trough_utilization, peak_utilization)
    trace = UtilizationTrace(values, interval=minutes(1), name="diurnal")
    jobs = generate_trace_driven_jobs(spec, trace, seed=seed).jobs
    farm = _xeon_farm(servers, spec, seed=seed, backend=backend, search=search)
    return BuiltScenario(
        name="diurnal",
        spec=spec,
        jobs=jobs,
        farm=farm,
        parameters={
            "duration_minutes": num_samples,
            "trough_utilization": trough_utilization,
            "peak_utilization": peak_utilization,
            "servers": servers,
            "workload": workload,
        },
        backend=backend,
        seed=seed,
        search=search,
    )


# ---------------------------------------------------------------------------
# flash-crowd
# ---------------------------------------------------------------------------


@scenario(
    name="flash-crowd",
    description=(
        "Quiet baseline load interrupted by a sudden sustained burst — the "
        "predictor and over-provisioning stress test, served behind a "
        "least-loaded dispatcher."
    ),
    parameters=(
        ScenarioParameter("duration_minutes", 30, "length of the run"),
        ScenarioParameter("base_utilization", 0.1, "offered load outside the crowd window"),
        ScenarioParameter("crowd_utilization", 0.9, "offered load during the crowd window"),
        ScenarioParameter("crowd_start_minute", 12, "minute at which the crowd arrives"),
        ScenarioParameter("crowd_minutes", 6, "how long the crowd persists"),
        ScenarioParameter("servers", 3, "number of identical Xeon servers"),
        ScenarioParameter("workload", "google", "Table 5 workload class: dns, google or mail"),
    ),
)
def build_flash_crowd(
    *,
    seed: int,
    backend: str,
    search: str,
    duration_minutes: float,
    base_utilization: float,
    crowd_utilization: float,
    crowd_start_minute: float,
    crowd_minutes: float,
    servers: int,
    workload: str,
) -> BuiltScenario:
    num_samples = _check_duration(duration_minutes)
    servers = _check_servers(servers)
    if not 0.0 < base_utilization <= crowd_utilization <= 0.95:
        raise ScenarioError(
            "need 0 < base_utilization <= crowd_utilization <= 0.95, got "
            f"[{base_utilization}, {crowd_utilization}]"
        )
    start = int(round(crowd_start_minute))
    length = int(round(crowd_minutes))
    if start < 0 or length < 1:
        raise ScenarioError(
            f"crowd window [{start}, {start + length}) is invalid"
        )
    # Clip the window to the run so shrunken smoke runs keep their burst.
    start = min(start, max(0, num_samples - length))
    spec = workload_by_name(workload)
    values = np.full(num_samples, base_utilization)
    values[start : min(start + length, num_samples)] = crowd_utilization
    trace = UtilizationTrace(values, interval=minutes(1), name="flash-crowd")
    jobs = generate_trace_driven_jobs(spec, trace, seed=seed).jobs
    farm = _xeon_farm(
        servers,
        spec,
        seed=seed,
        backend=backend,
        search=search,
        dispatcher=LeastLoadedDispatcher(),
    )
    return BuiltScenario(
        name="flash-crowd",
        spec=spec,
        jobs=jobs,
        farm=farm,
        parameters={
            "duration_minutes": num_samples,
            "base_utilization": base_utilization,
            "crowd_utilization": crowd_utilization,
            "crowd_start_minute": start,
            "crowd_minutes": length,
            "servers": servers,
            "workload": workload,
        },
        backend=backend,
        seed=seed,
        search=search,
    )


# ---------------------------------------------------------------------------
# heavy-tail
# ---------------------------------------------------------------------------


@scenario(
    name="heavy-tail",
    description=(
        "Pareto (Lomax) service times at constant offered load — the regime "
        "where rare huge jobs dominate the response-time tail and deep sleep "
        "states are risky."
    ),
    parameters=(
        ScenarioParameter("duration_minutes", 25, "length of the run"),
        ScenarioParameter("utilization", 0.5, "constant offered load (relative to one server)"),
        ScenarioParameter("pareto_alpha", 2.5, "Pareto tail index (must exceed 2 for finite variance)"),
        ScenarioParameter("mean_service_ms", 92.0, "mean job size in milliseconds (the Mail workload's)"),
        ScenarioParameter("servers", 2, "number of identical Xeon servers"),
    ),
)
def build_heavy_tail(
    *,
    seed: int,
    backend: str,
    search: str,
    duration_minutes: float,
    utilization: float,
    pareto_alpha: float,
    mean_service_ms: float,
    servers: int,
) -> BuiltScenario:
    num_samples = _check_duration(duration_minutes)
    servers = _check_servers(servers)
    if not 0.0 < utilization <= 0.95:
        raise ScenarioError(
            f"utilization must lie in (0, 0.95], got {utilization}"
        )
    if pareto_alpha <= 2.0:
        raise ScenarioError(
            f"pareto_alpha must exceed 2 (finite variance), got {pareto_alpha}"
        )
    if mean_service_ms <= 0:
        raise ScenarioError(
            f"mean_service_ms must be positive, got {mean_service_ms}"
        )
    mean_service = mean_service_ms / 1000.0
    service = Pareto(alpha=pareto_alpha, mean_value=mean_service)
    spec = WorkloadSpec(
        name="heavy-tail",
        interarrival=Exponential(mean_service / utilization),
        service=service,
    )
    values = np.full(num_samples, utilization)
    trace = UtilizationTrace(values, interval=minutes(1), name="heavy-tail")
    jobs = generate_trace_driven_jobs(spec, trace, seed=seed).jobs
    farm = _xeon_farm(servers, spec, seed=seed, backend=backend, search=search)
    return BuiltScenario(
        name="heavy-tail",
        spec=spec,
        jobs=jobs,
        farm=farm,
        parameters={
            "duration_minutes": num_samples,
            "utilization": utilization,
            "pareto_alpha": pareto_alpha,
            "mean_service_ms": mean_service_ms,
            "servers": servers,
        },
        backend=backend,
        seed=seed,
        search=search,
    )


# ---------------------------------------------------------------------------
# correlated-arrivals
# ---------------------------------------------------------------------------


@scenario(
    name="correlated-arrivals",
    description=(
        "Two-state Markov-modulated load: sticky quiet/bursty phases produce "
        "minute-scale autocorrelation in the arrival process (an MMPP-style "
        "stream), defeating memoryless predictors."
    ),
    parameters=(
        ScenarioParameter("duration_minutes", 30, "length of the run"),
        ScenarioParameter("quiet_utilization", 0.12, "offered load in the quiet phase"),
        ScenarioParameter("bursty_utilization", 0.7, "offered load in the bursty phase"),
        ScenarioParameter("persistence", 0.85, "probability of staying in the current phase each minute"),
        ScenarioParameter("servers", 2, "number of identical Xeon servers"),
        ScenarioParameter("workload", "dns", "Table 5 workload class: dns, google or mail"),
    ),
)
def build_correlated_arrivals(
    *,
    seed: int,
    backend: str,
    search: str,
    duration_minutes: float,
    quiet_utilization: float,
    bursty_utilization: float,
    persistence: float,
    servers: int,
    workload: str,
) -> BuiltScenario:
    num_samples = _check_duration(duration_minutes)
    servers = _check_servers(servers)
    if not 0.0 < quiet_utilization <= bursty_utilization <= 0.95:
        raise ScenarioError(
            "need 0 < quiet_utilization <= bursty_utilization <= 0.95, got "
            f"[{quiet_utilization}, {bursty_utilization}]"
        )
    if not 0.0 <= persistence < 1.0:
        raise ScenarioError(
            f"persistence must lie in [0, 1), got {persistence}"
        )
    spec = workload_by_name(workload)
    rng = np.random.default_rng(seed)
    levels = (quiet_utilization, bursty_utilization)
    state = 0
    values = np.empty(num_samples)
    for index in range(num_samples):
        values[index] = levels[state]
        if rng.random() > persistence:
            state = 1 - state
    trace = UtilizationTrace(values, interval=minutes(1), name="correlated-arrivals")
    jobs = generate_trace_driven_jobs(spec, trace, seed=seed + 1).jobs
    farm = _xeon_farm(servers, spec, seed=seed, backend=backend, search=search)
    return BuiltScenario(
        name="correlated-arrivals",
        spec=spec,
        jobs=jobs,
        farm=farm,
        parameters={
            "duration_minutes": num_samples,
            "quiet_utilization": quiet_utilization,
            "bursty_utilization": bursty_utilization,
            "persistence": persistence,
            "servers": servers,
            "workload": workload,
        },
        backend=backend,
        seed=seed,
        search=search,
    )


# ---------------------------------------------------------------------------
# multiclass
# ---------------------------------------------------------------------------


def _mixture_spec(
    specs_and_rates: list[tuple[WorkloadSpec, float]],
) -> WorkloadSpec:
    """Moment-matched spec of a superposition of independent job classes.

    Arrival processes superpose (rates add); the service distribution is the
    arrival-rate-weighted mixture, matched by mean and Cv through the library's
    standard :func:`from_mean_cv` substitution.
    """
    total_rate = sum(rate for _, rate in specs_and_rates)
    weights = [rate / total_rate for _, rate in specs_and_rates]
    mean = sum(
        weight * spec.service.mean
        for (spec, _), weight in zip(specs_and_rates, weights, strict=True)
    )
    second_moment = sum(
        weight * spec.service.second_moment
        for (spec, _), weight in zip(specs_and_rates, weights, strict=True)
    )
    variance = max(second_moment - mean**2, 0.0)
    cv = math.sqrt(variance) / mean
    return WorkloadSpec(
        name="multiclass",
        interarrival=Exponential(1.0 / total_rate),
        service=from_mean_cv(mean, cv),
    )


@scenario(
    name="multiclass",
    description=(
        "DNS-like (large, rare) and Google-like (small, frequent) job classes "
        "superposed into one stream and served by a shared Xeon farm."
    ),
    parameters=(
        ScenarioParameter("duration_minutes", 20, "length of the run"),
        ScenarioParameter("dns_utilization", 0.25, "offered load contributed by the DNS-like class"),
        ScenarioParameter("google_utilization", 0.35, "offered load contributed by the Google-like class"),
        ScenarioParameter("servers", 2, "number of identical Xeon servers"),
    ),
)
def build_multiclass(
    *,
    seed: int,
    backend: str,
    search: str,
    duration_minutes: float,
    dns_utilization: float,
    google_utilization: float,
    servers: int,
) -> BuiltScenario:
    num_samples = _check_duration(duration_minutes)
    servers = _check_servers(servers)
    for label, value in (
        ("dns_utilization", dns_utilization),
        ("google_utilization", google_utilization),
    ):
        if not 0.0 < value <= 0.95:
            raise ScenarioError(f"{label} must lie in (0, 0.95], got {value}")
    dns_spec = dns_workload()
    google_spec = google_workload()
    streams = []
    tenants = []
    for offset, (class_spec, load) in enumerate(
        ((dns_spec, dns_utilization), (google_spec, google_utilization))
    ):
        values = np.full(num_samples, load)
        trace = UtilizationTrace(
            values, interval=minutes(1), name=f"multiclass-{class_spec.name}"
        )
        stream = generate_trace_driven_jobs(class_spec, trace, seed=seed + offset).jobs
        # Each job class is a tenant: labels survive the merge and the
        # dispatch, so FarmResult.tenant_rows() reports per-class latency
        # without changing the (tenant-blind, round-robin) farm numbers.
        streams.append(
            stream.with_tenant_ids(np.full(len(stream), offset, dtype=np.int64))
        )
        # Budget each class in absolute seconds against its *own* mean
        # service time: the farm-level mean constraint normalises by the
        # mixture mean, which would misjudge the individual classes.
        tenants.append(
            TenantSpec(
                name=class_spec.name,
                qos=percentile_qos_from_baseline(
                    _RHO_B, class_spec.mean_service_time
                ),
            )
        )
    jobs = merge_streams(streams)
    spec = _mixture_spec(
        [
            (dns_spec, dns_utilization / dns_spec.mean_service_time),
            (google_spec, google_utilization / google_spec.mean_service_time),
        ]
    )
    farm = _xeon_farm(
        servers,
        spec,
        seed=seed,
        backend=backend,
        search=search,
        qos=FarmQos.per_tenant(*tenants),
    )
    return BuiltScenario(
        name="multiclass",
        spec=spec,
        jobs=jobs,
        farm=farm,
        parameters={
            "duration_minutes": num_samples,
            "dns_utilization": dns_utilization,
            "google_utilization": google_utilization,
            "servers": servers,
        },
        backend=backend,
        seed=seed,
        search=search,
    )


# ---------------------------------------------------------------------------
# trace-replay
# ---------------------------------------------------------------------------


@scenario(
    name="trace-replay",
    description=(
        "Replay a stored utilisation trace: the synthetic Figure 7 traces "
        "('file-server', 'email-store'), or any two-column CSV produced by "
        "UtilizationTrace.to_csv."
    ),
    parameters=(
        ScenarioParameter("trace", "file-server", "'file-server', 'email-store', or a path to a trace CSV"),
        ScenarioParameter("duration_minutes", 45, "how many minutes of the trace to replay"),
        ScenarioParameter("scale", 1.0, "multiply the trace's utilisation by this factor (clipped to [0, 1])"),
        ScenarioParameter("servers", 1, "number of identical Xeon servers"),
        ScenarioParameter("workload", "dns", "Table 5 workload class supplying job statistics"),
    ),
)
def build_trace_replay(
    *,
    seed: int,
    backend: str,
    search: str,
    trace: str,
    duration_minutes: float,
    scale: float,
    servers: int,
    workload: str,
) -> BuiltScenario:
    num_samples = _check_duration(duration_minutes)
    servers = _check_servers(servers)
    if trace == "file-server":
        utilization = synthetic_file_server_trace(days=1, seed=seed)
    elif trace == "email-store":
        utilization = synthetic_email_store_trace(days=1, seed=seed)
    elif Path(trace).suffix == ".csv":
        utilization = UtilizationTrace.from_csv(trace)
    else:
        raise ScenarioError(
            f"unknown trace {trace!r}; expected 'file-server', 'email-store' "
            "or a path to a .csv file"
        )
    if scale != 1.0:
        utilization = utilization.scaled(scale)
    num_samples = min(num_samples, len(utilization))
    utilization = utilization.slice_index(0, num_samples)
    spec = workload_by_name(workload)
    jobs = generate_trace_driven_jobs(spec, utilization, seed=seed).jobs
    farm = _xeon_farm(servers, spec, seed=seed, backend=backend, search=search)
    return BuiltScenario(
        name="trace-replay",
        spec=spec,
        jobs=jobs,
        farm=farm,
        parameters={
            "trace": trace,
            "duration_minutes": num_samples,
            "scale": scale,
            "servers": servers,
            "workload": workload,
        },
        backend=backend,
        seed=seed,
        search=search,
    )


# ---------------------------------------------------------------------------
# heterogeneous-farm
# ---------------------------------------------------------------------------


@scenario(
    name="heterogeneous-farm",
    description=(
        "Mixed Xeon + Atom fleet behind a power-aware dispatcher: low-power "
        "platforms absorb the base load, the Xeons wake for the diurnal peak "
        "— farm-level energy proportionality."
    ),
    parameters=(
        ScenarioParameter("duration_minutes", 30, "length of the run; one day/night cycle is compressed into it"),
        ScenarioParameter("xeon_servers", 1, "number of Xeon-class servers"),
        ScenarioParameter("atom_servers", 2, "number of Atom-class servers"),
        ScenarioParameter("trough_utilization", 0.1, "night-time offered load (relative to one server)"),
        ScenarioParameter("peak_utilization", 0.8, "mid-day offered load (relative to one server)"),
        ScenarioParameter("workload", "google", "Table 5 workload class: dns, google or mail"),
    ),
)
def build_heterogeneous_farm(
    *,
    seed: int,
    backend: str,
    search: str,
    duration_minutes: float,
    xeon_servers: int,
    atom_servers: int,
    trough_utilization: float,
    peak_utilization: float,
    workload: str,
) -> BuiltScenario:
    num_samples = _check_duration(duration_minutes)
    for label, count in (("xeon_servers", xeon_servers), ("atom_servers", atom_servers)):
        if count != int(count) or count < 0:
            raise ScenarioError(
                f"{label} must be a non-negative whole number, got {count}"
            )
    xeon_servers, atom_servers = int(xeon_servers), int(atom_servers)
    if xeon_servers + atom_servers < 1:
        raise ScenarioError(
            "need at least one server in total, got "
            f"xeon_servers={xeon_servers}, atom_servers={atom_servers}"
        )
    spec = workload_by_name(workload)
    values = _diurnal_values(num_samples, trough_utilization, peak_utilization)
    trace = UtilizationTrace(values, interval=minutes(1), name="heterogeneous-farm")
    jobs = generate_trace_driven_jobs(spec, trace, seed=seed).jobs

    xeon = xeon_power_model()
    atom = atom_power_model()
    servers: list[ServerSpec] = []
    for index in range(xeon_servers):
        servers.append(
            _sleepscale_server(
                f"xeon-{index}",
                xeon,
                seed=seed + index,
                backend=backend,
                search=search,
            )
        )
    for index in range(atom_servers):
        servers.append(
            _sleepscale_server(
                f"atom-{index}",
                atom,
                seed=seed + xeon_servers + index,
                backend=backend,
                search=search,
            )
        )
    dispatcher = PowerAwareDispatcher.from_power_models(
        [server.power_model for server in servers]
    )
    farm = ServerFarm(
        servers=tuple(servers),
        spec=spec,
        dispatcher=dispatcher,
        search_cache=_shared_cache(search),
    )
    return BuiltScenario(
        name="heterogeneous-farm",
        spec=spec,
        jobs=jobs,
        farm=farm,
        parameters={
            "duration_minutes": num_samples,
            "xeon_servers": xeon_servers,
            "atom_servers": atom_servers,
            "trough_utilization": trough_utilization,
            "peak_utilization": peak_utilization,
            "workload": workload,
        },
        backend=backend,
        seed=seed,
        search=search,
    )


# ---------------------------------------------------------------------------
# farm-scale
# ---------------------------------------------------------------------------


@scenario(
    name="farm-scale",
    description=(
        "Constant heavy load streamed over a 16-server mixed Xeon/Atom fleet: "
        "the speed-aware heap dispatcher assigns ~1M jobs (at defaults) and "
        "the farm consumes them in arrival-ordered chunks, never "
        "materialising every per-server stream at once."
    ),
    parameters=(
        ScenarioParameter("duration_minutes", 80, "length of the run (~1M Google-like jobs at defaults)"),
        ScenarioParameter("utilization", 0.9, "constant offered load (relative to one full-frequency server)"),
        ScenarioParameter("xeon_servers", 8, "number of Xeon-class servers"),
        ScenarioParameter("atom_servers", 8, "number of Atom-class servers"),
        ScenarioParameter("atom_frequency_ceiling", 0.7, "DVFS ceiling the dispatcher assumes for Atom-class servers"),
        ScenarioParameter("chunk_jobs", 32768, "dispatch/feed chunk size in jobs; 0 runs one-shot"),
        ScenarioParameter("workload", "google", "Table 5 workload class: dns, google or mail"),
    ),
)
def build_farm_scale(
    *,
    seed: int,
    backend: str,
    search: str,
    duration_minutes: float,
    utilization: float,
    xeon_servers: int,
    atom_servers: int,
    atom_frequency_ceiling: float,
    chunk_jobs: int,
    workload: str,
) -> BuiltScenario:
    num_samples = _check_duration(duration_minutes)
    for label, count in (("xeon_servers", xeon_servers), ("atom_servers", atom_servers)):
        if count != int(count) or count < 0:
            raise ScenarioError(
                f"{label} must be a non-negative whole number, got {count}"
            )
    xeon_servers, atom_servers = int(xeon_servers), int(atom_servers)
    if xeon_servers + atom_servers < 1:
        raise ScenarioError(
            "need at least one server in total, got "
            f"xeon_servers={xeon_servers}, atom_servers={atom_servers}"
        )
    if not 0.0 < utilization <= 0.95:
        raise ScenarioError(
            f"utilization must lie in (0, 0.95], got {utilization}"
        )
    if not 0.0 < atom_frequency_ceiling <= 1.0:
        raise ScenarioError(
            f"atom_frequency_ceiling must lie in (0, 1], got {atom_frequency_ceiling}"
        )
    if chunk_jobs != int(chunk_jobs) or chunk_jobs < 0:
        raise ScenarioError(
            f"chunk_jobs must be a non-negative whole number, got {chunk_jobs}"
        )
    chunk_jobs = int(chunk_jobs)
    spec = workload_by_name(workload)
    values = np.full(num_samples, utilization)
    trace = UtilizationTrace(values, interval=minutes(1), name="farm-scale")
    jobs = generate_trace_driven_jobs(spec, trace, seed=seed).jobs

    xeon = xeon_power_model()
    atom = atom_power_model()
    servers: list[ServerSpec] = []
    for index in range(xeon_servers):
        servers.append(
            _sleepscale_server(
                f"xeon-{index}",
                xeon,
                seed=seed + index,
                backend=backend,
                search=search,
            )
        )
    for index in range(atom_servers):
        servers.append(
            _sleepscale_server(
                f"atom-{index}",
                atom,
                seed=seed + xeon_servers + index,
                backend=backend,
                search=search,
                # The front end provisions against the Atom parts' lower
                # DVFS ceiling, so backlog estimates are speed-aware.
                max_frequency=atom_frequency_ceiling,
            )
        )
    dispatcher = PowerAwareDispatcher.from_power_models(
        [server.power_model for server in servers]
    )
    farm = ServerFarm(
        servers=tuple(servers),
        spec=spec,
        dispatcher=dispatcher,
        chunk_jobs=chunk_jobs or None,
        search_cache=_shared_cache(search),
    )
    return BuiltScenario(
        name="farm-scale",
        spec=spec,
        jobs=jobs,
        farm=farm,
        parameters={
            "duration_minutes": num_samples,
            "utilization": utilization,
            "xeon_servers": xeon_servers,
            "atom_servers": atom_servers,
            "atom_frequency_ceiling": atom_frequency_ceiling,
            "chunk_jobs": chunk_jobs,
            "workload": workload,
        },
        backend=backend,
        seed=seed,
        search=search,
    )


# ---------------------------------------------------------------------------
# mega-farm
# ---------------------------------------------------------------------------


@scenario(
    name="mega-farm",
    description=(
        "Fleet-scale executor stress: 64 mixed Xeon/Atom servers (at "
        "defaults) behind the speed-aware least-loaded dispatcher, with "
        "short epochs so per-server policy searches dominate — the "
        "multi-core regime where `--executor process` shards the fleet "
        "across worker processes."
    ),
    parameters=(
        ScenarioParameter("duration_minutes", 40, "length of the run"),
        ScenarioParameter("utilization", 0.85, "constant offered load (relative to one full-frequency server)"),
        ScenarioParameter("xeon_servers", 32, "number of Xeon-class servers"),
        ScenarioParameter("atom_servers", 32, "number of Atom-class servers"),
        ScenarioParameter("atom_frequency_ceiling", 0.7, "DVFS ceiling the dispatcher assumes for Atom-class servers"),
        ScenarioParameter("epoch_minutes", 2.0, "policy-update epoch length; short epochs mean many searches per server"),
        ScenarioParameter("workload", "google", "Table 5 workload class: dns, google or mail"),
    ),
)
def build_mega_farm(
    *,
    seed: int,
    backend: str,
    search: str,
    duration_minutes: float,
    utilization: float,
    xeon_servers: int,
    atom_servers: int,
    atom_frequency_ceiling: float,
    epoch_minutes: float,
    workload: str,
) -> BuiltScenario:
    num_samples = _check_duration(duration_minutes)
    for label, count in (("xeon_servers", xeon_servers), ("atom_servers", atom_servers)):
        if count != int(count) or count < 0:
            raise ScenarioError(
                f"{label} must be a non-negative whole number, got {count}"
            )
    xeon_servers, atom_servers = int(xeon_servers), int(atom_servers)
    if xeon_servers + atom_servers < 1:
        raise ScenarioError(
            "need at least one server in total, got "
            f"xeon_servers={xeon_servers}, atom_servers={atom_servers}"
        )
    if not 0.0 < utilization <= 0.95:
        raise ScenarioError(
            f"utilization must lie in (0, 0.95], got {utilization}"
        )
    if not 0.0 < atom_frequency_ceiling <= 1.0:
        raise ScenarioError(
            f"atom_frequency_ceiling must lie in (0, 1], got {atom_frequency_ceiling}"
        )
    if epoch_minutes <= 0:
        raise ScenarioError(
            f"epoch_minutes must be positive, got {epoch_minutes}"
        )
    spec = workload_by_name(workload)
    values = np.full(num_samples, utilization)
    trace = UtilizationTrace(values, interval=minutes(1), name="mega-farm")
    jobs = generate_trace_driven_jobs(spec, trace, seed=seed).jobs

    xeon = xeon_power_model()
    atom = atom_power_model()
    servers: list[ServerSpec] = []
    for index in range(xeon_servers):
        servers.append(
            _sleepscale_server(
                f"xeon-{index}",
                xeon,
                seed=seed + index,
                backend=backend,
                search=search,
                epoch_minutes=epoch_minutes,
            )
        )
    for index in range(atom_servers):
        servers.append(
            _sleepscale_server(
                f"atom-{index}",
                atom,
                seed=seed + xeon_servers + index,
                backend=backend,
                search=search,
                epoch_minutes=epoch_minutes,
                max_frequency=atom_frequency_ceiling,
            )
        )
    # Least-loaded (not power-aware) on purpose: every server stays active,
    # so the run's cost is dominated by the 64 independent per-server epoch
    # loops — exactly the work the process executor shards across cores.
    farm = ServerFarm(
        servers=tuple(servers),
        spec=spec,
        dispatcher=LeastLoadedDispatcher(),
        search_cache=_shared_cache(search),
    )
    return BuiltScenario(
        name="mega-farm",
        spec=spec,
        jobs=jobs,
        farm=farm,
        parameters={
            "duration_minutes": num_samples,
            "utilization": utilization,
            "xeon_servers": xeon_servers,
            "atom_servers": atom_servers,
            "atom_frequency_ceiling": atom_frequency_ceiling,
            "epoch_minutes": epoch_minutes,
            "workload": workload,
        },
        backend=backend,
        seed=seed,
        search=search,
    )


# ---------------------------------------------------------------------------
# autoscale-diurnal / autoscale-surge
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RaceToHaltStrategyFactory:
    """Picklable zero-argument factory for a race-to-halt strategy.

    The autoscale scenarios model a latency-sensitive fleet that keeps its
    servers in the shallow ``C1S0(i)`` sleep when idle (instant wake-up, no
    per-job latency risk) and leaves energy savings to the *farm* controller
    parking whole servers — the AutoScale premise, and the regime where
    farm-level right-sizing is the dominant knob.
    """

    power_model: ServerPowerModel
    state: SystemState = C1_S0I

    def __call__(self) -> RaceToHaltStrategy:
        return RaceToHaltStrategy(self.power_model, self.state)


def _autoscale_server(
    name: str,
    power_model: ServerPowerModel,
    *,
    epoch_minutes: float = 1.0,
) -> ServerSpec:
    """A shallow-sleep race-to-halt server for the autoscale scenarios."""
    config = RuntimeConfig(
        epoch_minutes=epoch_minutes, rho_b=_RHO_B, over_provisioning=0.35
    )
    return ServerSpec(
        name=name,
        power_model=power_model,
        strategy_factory=RaceToHaltStrategyFactory(power_model=power_model),
        predictor_factory=LmsCusumPredictorFactory(history=10),
        config=config,
    )


def _autoscale_farm_and_controller(
    servers: int,
    spec: WorkloadSpec,
    *,
    policy: str,
    setup_latency_s: float,
    min_awake: float,
    epoch_minutes: float = 1.0,
) -> ServerFarm:
    """A homogeneous shallow-sleep Xeon farm with an embedded controller."""
    if policy not in CONTROLLER_POLICIES:
        raise ScenarioError(
            f"policy must be one of {', '.join(CONTROLLER_POLICIES)}, "
            f"got {policy!r}"
        )
    if setup_latency_s < 0:
        raise ScenarioError(
            f"setup_latency_s must be >= 0, got {setup_latency_s}"
        )
    if min_awake != int(min_awake) or not 1 <= int(min_awake) <= servers:
        raise ScenarioError(
            f"min_awake must be a whole number in [1, {servers}], "
            f"got {min_awake}"
        )
    power_model = xeon_power_model()
    specs = tuple(
        _autoscale_server(
            f"xeon-{index}", power_model, epoch_minutes=epoch_minutes
        )
        for index in range(servers)
    )
    controller = FarmController(
        policy=policy,
        setup=SetupModel(latency_s=setup_latency_s),
        min_awake=int(min_awake),
        epoch_minutes=epoch_minutes,
    )
    return ServerFarm(
        servers=specs,
        spec=spec,
        dispatcher=LeastLoadedDispatcher(),
        controller=controller,
    )


@scenario(
    name="autoscale-diurnal",
    description=(
        "Farm-level right-sizing over a day/night cycle: an over-provisioned "
        "fleet of shallow-sleep (race-to-halt C1) Xeon servers under a "
        "FarmController that parks servers through the trough and wakes them "
        "(paying setup latency and energy) as the day ramps up."
    ),
    parameters=(
        ScenarioParameter("duration_minutes", 40, "length of the run; one full day/night cycle is compressed into it"),
        ScenarioParameter("trough_utilization", 0.06, "night-time offered load (relative to one server)"),
        ScenarioParameter("peak_utilization", 0.85, "mid-day offered load (relative to one server)"),
        ScenarioParameter("servers", 4, "fleet size (provisioned for redundancy, not for mean load)"),
        ScenarioParameter("policy", "reactive", "right-sizing policy: always-on, reactive or predictive"),
        ScenarioParameter("setup_latency_s", 30.0, "seconds a woken server needs before it can serve"),
        ScenarioParameter("min_awake", 1, "servers the controller must keep serviceable at all times"),
        ScenarioParameter("workload", "dns", "Table 5 workload class: dns, google or mail"),
    ),
)
def build_autoscale_diurnal(
    *,
    seed: int,
    backend: str,
    search: str,
    duration_minutes: float,
    trough_utilization: float,
    peak_utilization: float,
    servers: int,
    policy: str,
    setup_latency_s: float,
    min_awake: int,
    workload: str,
) -> BuiltScenario:
    num_samples = _check_duration(duration_minutes)
    servers = _check_servers(servers)
    spec = workload_by_name(workload)
    values = _diurnal_values(num_samples, trough_utilization, peak_utilization)
    trace = UtilizationTrace(values, interval=minutes(1), name="autoscale-diurnal")
    jobs = generate_trace_driven_jobs(spec, trace, seed=seed).jobs
    farm = _autoscale_farm_and_controller(
        servers,
        spec,
        policy=policy,
        setup_latency_s=setup_latency_s,
        min_awake=min_awake,
    )
    return BuiltScenario(
        name="autoscale-diurnal",
        spec=spec,
        jobs=jobs,
        farm=farm,
        parameters={
            "duration_minutes": num_samples,
            "trough_utilization": trough_utilization,
            "peak_utilization": peak_utilization,
            "servers": servers,
            "policy": policy,
            "setup_latency_s": setup_latency_s,
            "min_awake": int(min_awake),
            "workload": workload,
        },
        backend=backend,
        seed=seed,
        search=search,
    )


@scenario(
    name="autoscale-surge",
    description=(
        "Farm-level right-sizing under a load step: a quiet baseline, a "
        "sudden sustained surge through the middle third of the run, then "
        "quiet again — the controller must scale up through the surge "
        "(absorbing the setup latency) and park back down afterwards."
    ),
    parameters=(
        ScenarioParameter("duration_minutes", 30, "length of the run; the surge occupies the middle third"),
        ScenarioParameter("base_utilization", 0.08, "offered load outside the surge (relative to one server)"),
        ScenarioParameter("surge_utilization", 0.85, "offered load during the surge (relative to one server)"),
        ScenarioParameter("servers", 4, "fleet size (provisioned for the surge, idle in the baseline)"),
        ScenarioParameter("policy", "reactive", "right-sizing policy: always-on, reactive or predictive"),
        ScenarioParameter("setup_latency_s", 30.0, "seconds a woken server needs before it can serve"),
        ScenarioParameter("min_awake", 1, "servers the controller must keep serviceable at all times"),
        ScenarioParameter("workload", "dns", "Table 5 workload class: dns, google or mail"),
    ),
)
def build_autoscale_surge(
    *,
    seed: int,
    backend: str,
    search: str,
    duration_minutes: float,
    base_utilization: float,
    surge_utilization: float,
    servers: int,
    policy: str,
    setup_latency_s: float,
    min_awake: int,
    workload: str,
) -> BuiltScenario:
    num_samples = _check_duration(duration_minutes)
    servers = _check_servers(servers)
    if not 0.0 < base_utilization <= surge_utilization <= 0.95:
        raise ScenarioError(
            "need 0 < base_utilization <= surge_utilization <= 0.95, got "
            f"[{base_utilization}, {surge_utilization}]"
        )
    spec = workload_by_name(workload)
    values = np.full(num_samples, base_utilization)
    values[num_samples // 3 : max(2 * num_samples // 3, num_samples // 3 + 1)] = (
        surge_utilization
    )
    trace = UtilizationTrace(values, interval=minutes(1), name="autoscale-surge")
    jobs = generate_trace_driven_jobs(spec, trace, seed=seed).jobs
    farm = _autoscale_farm_and_controller(
        servers,
        spec,
        policy=policy,
        setup_latency_s=setup_latency_s,
        min_awake=min_awake,
    )
    return BuiltScenario(
        name="autoscale-surge",
        spec=spec,
        jobs=jobs,
        farm=farm,
        parameters={
            "duration_minutes": num_samples,
            "base_utilization": base_utilization,
            "surge_utilization": surge_utilization,
            "servers": servers,
            "policy": policy,
            "setup_latency_s": setup_latency_s,
            "min_awake": int(min_awake),
            "workload": workload,
        },
        backend=backend,
        seed=seed,
        search=search,
    )


# ---------------------------------------------------------------------------
# noisy-neighbor / tenant-surge / priority-inversion
# ---------------------------------------------------------------------------


@scenario(
    name="noisy-neighbor",
    description=(
        "Two tenants on a shared farm: a low-priority flash crowd erupts "
        "against a steady latency-SLA victim. Under the tenant-blind "
        "least-loaded dispatcher the crowd's predictor-lag overload queues "
        "the victim's jobs too; priority or weighted-fair dispatch confines "
        "the damage to the crowd's own servers."
    ),
    parameters=(
        ScenarioParameter("duration_minutes", 30, "length of the run"),
        ScenarioParameter("victim_utilization", 0.15, "victim tenant's steady offered load (relative to one server)"),
        ScenarioParameter("crowd_utilization", 0.9, "crowd tenant's offered load during its burst window"),
        ScenarioParameter("crowd_base_utilization", 0.05, "crowd tenant's offered load outside the burst window"),
        ScenarioParameter("crowd_start_minute", 10, "minute at which the crowd arrives"),
        ScenarioParameter("crowd_minutes", 20, "how long the crowd persists (default: to the end of the run)"),
        ScenarioParameter("servers", 2, "number of identical Xeon servers (>= 2, one per tenant)"),
        ScenarioParameter("dispatcher", TENANT_DISPATCH_PRIORITY, "tenant dispatch kind: least-loaded, priority or weighted-fair"),
        ScenarioParameter("workload", "google", "Table 5 workload class both tenants draw jobs from"),
    ),
)
def build_noisy_neighbor(
    *,
    seed: int,
    backend: str,
    search: str,
    duration_minutes: float,
    victim_utilization: float,
    crowd_utilization: float,
    crowd_base_utilization: float,
    crowd_start_minute: float,
    crowd_minutes: float,
    servers: int,
    dispatcher: str,
    workload: str,
) -> BuiltScenario:
    num_samples = _check_duration(duration_minutes)
    servers = _check_servers(servers)
    dispatcher = _check_dispatcher(dispatcher)
    if servers < 2:
        raise ScenarioError(
            f"noisy-neighbor needs at least 2 servers (one per tenant), got {servers}"
        )
    for label, value in (
        ("victim_utilization", victim_utilization),
        ("crowd_utilization", crowd_utilization),
        ("crowd_base_utilization", crowd_base_utilization),
    ):
        if not 0.0 < value <= 0.95:
            raise ScenarioError(f"{label} must lie in (0, 0.95], got {value}")
    start = int(round(crowd_start_minute))
    length = int(round(crowd_minutes))
    if start < 0 or length < 1:
        raise ScenarioError(
            f"crowd window [{start}, {start + length}) is invalid"
        )
    # Clip the window to the run so shrunken smoke runs keep their burst.
    start = min(start, max(0, num_samples - length))
    spec = workload_by_name(workload)
    crowd_values = np.full(num_samples, crowd_base_utilization)
    crowd_values[start : min(start + length, num_samples)] = crowd_utilization
    victim_values = np.full(num_samples, victim_utilization)
    jobs = _labelled_tenant_jobs(
        spec, [crowd_values, victim_values], seed=seed, name="noisy-neighbor"
    )
    farm_qos = FarmQos.per_tenant(
        TenantSpec(
            name="crowd",
            qos=mean_qos_from_baseline(_RHO_B),
            weight=1.0,
            priority=0,
        ),
        TenantSpec(
            name="victim",
            qos=percentile_qos_from_baseline(_RHO_B, spec.mean_service_time),
            weight=1.0,
            priority=1,
        ),
    )
    farm = _tenant_farm(
        servers, spec, farm_qos, dispatcher, seed=seed, backend=backend, search=search
    )
    return BuiltScenario(
        name="noisy-neighbor",
        spec=spec,
        jobs=jobs,
        farm=farm,
        parameters={
            "duration_minutes": num_samples,
            "victim_utilization": victim_utilization,
            "crowd_utilization": crowd_utilization,
            "crowd_base_utilization": crowd_base_utilization,
            "crowd_start_minute": start,
            "crowd_minutes": length,
            "servers": servers,
            "dispatcher": dispatcher,
            "workload": workload,
        },
        backend=backend,
        seed=seed,
        search=search,
    )


@scenario(
    name="tenant-surge",
    description=(
        "Weighted-fair capacity split under a tenant-local load step: a "
        "steady tenant shares the farm with a surging tenant whose load "
        "steps up through the middle third of the run. The weighted-fair "
        "partitions keep the steady tenant's latency flat while the surge "
        "fills its own (larger, weight-proportional) share."
    ),
    parameters=(
        ScenarioParameter("duration_minutes", 30, "length of the run; the surge occupies the middle third"),
        ScenarioParameter("steady_utilization", 0.2, "steady tenant's constant offered load"),
        ScenarioParameter("surge_base_utilization", 0.1, "surging tenant's offered load outside the surge"),
        ScenarioParameter("surge_utilization", 0.85, "surging tenant's offered load during the surge"),
        ScenarioParameter("surge_weight", 2.0, "surging tenant's capacity weight (steady tenant has weight 1)"),
        ScenarioParameter("servers", 3, "number of identical Xeon servers (>= 2, one per tenant)"),
        ScenarioParameter("dispatcher", TENANT_DISPATCH_WEIGHTED_FAIR, "tenant dispatch kind: least-loaded, priority or weighted-fair"),
        ScenarioParameter("workload", "google", "Table 5 workload class both tenants draw jobs from"),
    ),
)
def build_tenant_surge(
    *,
    seed: int,
    backend: str,
    search: str,
    duration_minutes: float,
    steady_utilization: float,
    surge_base_utilization: float,
    surge_utilization: float,
    surge_weight: float,
    servers: int,
    dispatcher: str,
    workload: str,
) -> BuiltScenario:
    num_samples = _check_duration(duration_minutes)
    servers = _check_servers(servers)
    dispatcher = _check_dispatcher(dispatcher)
    if servers < 2:
        raise ScenarioError(
            f"tenant-surge needs at least 2 servers (one per tenant), got {servers}"
        )
    if not 0.0 < surge_base_utilization <= surge_utilization <= 0.95:
        raise ScenarioError(
            "need 0 < surge_base_utilization <= surge_utilization <= 0.95, got "
            f"[{surge_base_utilization}, {surge_utilization}]"
        )
    if not 0.0 < steady_utilization <= 0.95:
        raise ScenarioError(
            f"steady_utilization must lie in (0, 0.95], got {steady_utilization}"
        )
    if not surge_weight > 0:
        raise ScenarioError(
            f"surge_weight must be positive, got {surge_weight}"
        )
    spec = workload_by_name(workload)
    steady_values = np.full(num_samples, steady_utilization)
    surge_values = np.full(num_samples, surge_base_utilization)
    surge_values[
        num_samples // 3 : max(2 * num_samples // 3, num_samples // 3 + 1)
    ] = surge_utilization
    jobs = _labelled_tenant_jobs(
        spec, [steady_values, surge_values], seed=seed, name="tenant-surge"
    )
    farm_qos = FarmQos.per_tenant(
        TenantSpec(
            name="steady",
            qos=mean_qos_from_baseline(_RHO_B),
            weight=1.0,
        ),
        TenantSpec(
            name="surge",
            qos=mean_qos_from_baseline(_RHO_B),
            weight=surge_weight,
        ),
    )
    farm = _tenant_farm(
        servers, spec, farm_qos, dispatcher, seed=seed, backend=backend, search=search
    )
    return BuiltScenario(
        name="tenant-surge",
        spec=spec,
        jobs=jobs,
        farm=farm,
        parameters={
            "duration_minutes": num_samples,
            "steady_utilization": steady_utilization,
            "surge_base_utilization": surge_base_utilization,
            "surge_utilization": surge_utilization,
            "surge_weight": surge_weight,
            "servers": servers,
            "dispatcher": dispatcher,
            "workload": workload,
        },
        backend=backend,
        seed=seed,
        search=search,
    )


@scenario(
    name="priority-inversion",
    description=(
        "A square-wave batch tenant toggles between near-idle and flood "
        "every few minutes, defeating the per-epoch predictor each time; a "
        "small high-priority interactive tenant with a p95 SLA shares the "
        "farm. Priority dispatch reserves the interactive tenant's servers "
        "so the repeated batch overloads cannot invert its priority."
    ),
    parameters=(
        ScenarioParameter("duration_minutes", 24, "length of the run"),
        ScenarioParameter("interactive_utilization", 0.15, "interactive tenant's steady offered load"),
        ScenarioParameter("batch_on_utilization", 0.9, "batch tenant's offered load in its on-phases"),
        ScenarioParameter("batch_off_utilization", 0.05, "batch tenant's offered load in its off-phases"),
        ScenarioParameter("phase_minutes", 6, "length of each batch on/off phase"),
        ScenarioParameter("servers", 2, "number of identical Xeon servers (>= 2, one per tenant)"),
        ScenarioParameter("dispatcher", TENANT_DISPATCH_PRIORITY, "tenant dispatch kind: least-loaded, priority or weighted-fair"),
        ScenarioParameter("workload", "google", "Table 5 workload class both tenants draw jobs from"),
    ),
)
def build_priority_inversion(
    *,
    seed: int,
    backend: str,
    search: str,
    duration_minutes: float,
    interactive_utilization: float,
    batch_on_utilization: float,
    batch_off_utilization: float,
    phase_minutes: float,
    servers: int,
    dispatcher: str,
    workload: str,
) -> BuiltScenario:
    num_samples = _check_duration(duration_minutes)
    servers = _check_servers(servers)
    dispatcher = _check_dispatcher(dispatcher)
    if servers < 2:
        raise ScenarioError(
            "priority-inversion needs at least 2 servers (one per tenant), "
            f"got {servers}"
        )
    for label, value in (
        ("interactive_utilization", interactive_utilization),
        ("batch_on_utilization", batch_on_utilization),
        ("batch_off_utilization", batch_off_utilization),
    ):
        if not 0.0 < value <= 0.95:
            raise ScenarioError(f"{label} must lie in (0, 0.95], got {value}")
    phase = int(round(phase_minutes))
    if phase < 1:
        raise ScenarioError(
            f"phase_minutes must be at least 1, got {phase_minutes}"
        )
    spec = workload_by_name(workload)
    minute = np.arange(num_samples)
    batch_values = np.where(
        (minute // phase) % 2 == 1, batch_on_utilization, batch_off_utilization
    ).astype(float)
    interactive_values = np.full(num_samples, interactive_utilization)
    jobs = _labelled_tenant_jobs(
        spec,
        [batch_values, interactive_values],
        seed=seed,
        name="priority-inversion",
    )
    farm_qos = FarmQos.per_tenant(
        TenantSpec(
            name="batch",
            qos=mean_qos_from_baseline(_RHO_B),
            weight=1.0,
            priority=0,
        ),
        TenantSpec(
            name="interactive",
            qos=percentile_qos_from_baseline(_RHO_B, spec.mean_service_time),
            weight=1.0,
            priority=1,
        ),
    )
    farm = _tenant_farm(
        servers, spec, farm_qos, dispatcher, seed=seed, backend=backend, search=search
    )
    return BuiltScenario(
        name="priority-inversion",
        spec=spec,
        jobs=jobs,
        farm=farm,
        parameters={
            "duration_minutes": num_samples,
            "interactive_utilization": interactive_utilization,
            "batch_on_utilization": batch_on_utilization,
            "batch_off_utilization": batch_off_utilization,
            "phase_minutes": phase,
            "servers": servers,
            "dispatcher": dispatcher,
            "workload": workload,
        },
        backend=backend,
        seed=seed,
        search=search,
    )
