"""Scenario registry: named, parameterised workload + farm configurations.

A *scenario* bundles everything one experiment run needs — a workload
specification, a concrete job stream, and a (possibly heterogeneous) server
farm — behind a name and a declared parameter list.  Scenarios are the unit
of evaluation breadth: the paper sweeps a handful of workload shapes; this
registry is where the reproduction accumulates every shape it can imagine
(diurnal cycles, flash crowds, heavy tails, correlated arrivals, mixed
traffic, trace replay, mixed-platform farms, ...).

The contract:

* a builder function produces a :class:`BuiltScenario` from ``seed``,
  ``backend`` and its declared parameters;
* :func:`register_scenario` (usually via the :func:`scenario` decorator)
  publishes it under a unique kebab-case name;
* :func:`get_scenario` / :func:`available_scenarios` /
  :func:`scenario_catalog` are the lookup surface the CLI, the docs and the
  tests share, so a scenario that builds also appears in ``list-scenarios``
  and in the smoke matrix automatically.

Builders must be deterministic given ``seed`` and honour ``backend`` by
passing it down to every policy-search strategy they create, so any scenario
can be replayed on the ``"reference"`` simulation backend for validation.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from collections.abc import Callable, Mapping
from typing import Any

from repro.cluster.controller import FarmController
from repro.cluster.farm import ServerFarm
from repro.cluster.tenancy import FarmQos
from repro.core.qos import QosConstraint
from repro.concurrency import Executor, validate_executor
from repro.core.search import SEARCH_FULL, validate_search
from repro.exceptions import ScenarioError
from repro.simulation.kernel import BACKEND_VECTORIZED, validate_backend
from repro.workloads.jobs import JobTrace
from repro.workloads.spec import WorkloadSpec
from repro.workloads.storage import validate_trace_backend


@dataclass(frozen=True)
class ScenarioParameter:
    """One declared knob of a scenario: name, default value, documentation."""

    name: str
    default: Any
    description: str

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise ScenarioError(
                f"parameter name must be a valid identifier, got {self.name!r}"
            )


@dataclass(frozen=True)
class BuiltScenario:
    """A fully materialised scenario, ready to run.

    ``jobs`` is the concrete arrival stream (absolute arrival times starting
    near zero), ``spec`` the :class:`~repro.workloads.spec.WorkloadSpec`
    describing its statistics (used for normalisation and synthetic
    characterisation), and ``farm`` the server fleet that will serve it.
    """

    name: str
    spec: WorkloadSpec
    jobs: JobTrace
    farm: ServerFarm
    parameters: Mapping[str, Any] = field(default_factory=dict)
    backend: str = BACKEND_VECTORIZED
    seed: int = 0
    #: Policy-search mode every search strategy of the farm was built with.
    search: str = SEARCH_FULL
    #: Filled in by :meth:`Scenario.build` from the scenario's description
    #: when the builder leaves it empty, so reports never need the registry.
    description: str = ""

    def __post_init__(self) -> None:
        if len(self.jobs) == 0:
            raise ScenarioError(
                f"scenario {self.name!r} built an empty job stream"
            )
        validate_backend(self.backend)
        validate_search(self.search)

    @property
    def num_jobs(self) -> int:
        """Number of jobs in the built stream."""
        return len(self.jobs)

    @property
    def duration(self) -> float:
        """Time span of the built stream (first to last arrival), seconds."""
        return self.jobs.duration

    def run(self):
        """Run the farm over the built job stream (returns a ``FarmResult``)."""
        return self.farm.run(self.jobs)


#: Signature every scenario builder implements.  Declared parameters arrive
#: as keyword arguments with their defaults already resolved.
ScenarioBuilder = Callable[..., BuiltScenario]


@dataclass(frozen=True)
class Scenario:
    """A registered scenario: builder plus declared parameters."""

    name: str
    description: str
    builder: ScenarioBuilder
    parameters: tuple[ScenarioParameter, ...] = ()

    #: Builder keywords owned by :meth:`build` itself; a declared parameter
    #: (or an override splatted into ``build``) must never collide with them.
    RESERVED_NAMES = frozenset(
        {
            "seed",
            "backend",
            "search",
            "executor",
            "trace_backend",
            "controller",
            "qos",
        }
    )

    def __post_init__(self) -> None:
        if not self.name:
            raise ScenarioError("a scenario needs a non-empty name")
        names = [parameter.name for parameter in self.parameters]
        if len(set(names)) != len(names):
            raise ScenarioError(
                f"scenario {self.name!r} declares duplicate parameters: {names}"
            )
        reserved = sorted(self.RESERVED_NAMES.intersection(names))
        if reserved:
            raise ScenarioError(
                f"scenario {self.name!r} declares reserved parameter name(s) "
                f"{reserved}; 'seed', 'backend', 'search', 'executor', "
                "'trace_backend', 'controller' and 'qos' are handled by "
                "build() itself"
            )

    def parameter_defaults(self) -> dict[str, Any]:
        """Declared parameters and their default values."""
        return {parameter.name: parameter.default for parameter in self.parameters}

    def build(
        self,
        *,
        seed: int = 0,
        backend: str = BACKEND_VECTORIZED,
        search: str = SEARCH_FULL,
        executor: Executor | str | None = None,
        trace_backend: str | None = None,
        controller: FarmController | str | None = None,
        qos: FarmQos | QosConstraint | None = None,
        **overrides: Any,
    ) -> BuiltScenario:
        """Materialise the scenario with *overrides* applied over the defaults.

        Unknown override names are rejected rather than silently ignored, so
        a typo in a CLI ``--set`` flag fails loudly.  ``search`` selects the
        per-epoch policy-search mode (``"full"`` or ``"frontier"``) every
        search strategy of the scenario is built with; ``"frontier"`` also
        attaches one shared characterisation cache across the farm.
        ``executor`` selects how the built farm fans its per-server epoch
        loops out (``"serial"``/``"thread"``/``"process"``) and
        ``trace_backend`` where the trace's arrays live while it runs
        (``"memory"``/``"shm"``/``"mmap"``; see
        :mod:`repro.workloads.storage`); neither changes results — the
        parity suites pin this — so builders never see them; both are
        applied to the built farm directly.  ``controller`` attaches a
        farm-level right-sizing controller (a
        :class:`~repro.cluster.controller.FarmController` instance, or a
        policy name building one with default — free — setup costs) to the
        built farm, replacing any controller the builder embedded; unlike
        the executor and trace backend it *does* change results, except for
        the setup-free ``"always-on"`` identity the parity suite pins.
        ``qos`` attaches a farm-level QoS contract (a
        :class:`~repro.cluster.tenancy.FarmQos`, or a bare
        :class:`~repro.core.qos.QosConstraint` wrapped into
        ``FarmQos.strictest``) to the built farm, replacing any the builder
        embedded; it is result-invisible at farm level — ``strictest`` is
        pinned bit-identical to no qos at all, and per-tenant mode only
        adds accounting.
        """
        validate_backend(backend)
        validate_search(search)
        validate_executor(executor)
        if trace_backend is not None:
            validate_trace_backend(trace_backend)
        if isinstance(controller, str):
            controller = FarmController(policy=controller)
        elif controller is not None and not isinstance(controller, FarmController):
            raise ScenarioError(
                "controller must be a FarmController, a policy name or None, "
                f"got {type(controller).__name__}"
            )
        if qos is not None and not isinstance(qos, (FarmQos, QosConstraint)):
            raise ScenarioError(
                "qos must be a FarmQos, a QosConstraint or None, "
                f"got {type(qos).__name__}"
            )
        declared = {parameter.name for parameter in self.parameters}
        unknown = sorted(set(overrides) - declared)
        if unknown:
            raise ScenarioError(
                f"scenario {self.name!r} has no parameter(s) {unknown}; "
                f"declared: {sorted(declared)}"
            )
        values = self.parameter_defaults()
        for key, value in overrides.items():
            # Type-check against the declared default so a mistyped CLI value
            # ("--set duration_minutes=abc") fails here with a clear message
            # instead of a TypeError somewhere inside the builder.
            default = values[key]
            if isinstance(default, bool) != isinstance(value, bool):
                expected, got = type(default).__name__, value
            elif isinstance(default, (int, float)) and not isinstance(
                value, (int, float)
            ):
                expected, got = "number", value
            elif isinstance(default, str) and not isinstance(value, str):
                expected, got = "string", value
            else:
                values[key] = value
                continue
            raise ScenarioError(
                f"parameter {key!r} of scenario {self.name!r} expects a "
                f"{expected} (default {default!r}), got {got!r}"
            )
        built = self.builder(seed=seed, backend=backend, search=search, **values)
        if not built.description:
            built = dataclasses.replace(built, description=self.description)
        if executor is not None:
            # Executor choice never changes results (the parity suite pins
            # this), so it is orthogonal to what the builder constructed and
            # is applied to the built farm afterwards.
            built = dataclasses.replace(
                built, farm=dataclasses.replace(built.farm, executor=executor)
            )
        if trace_backend is not None:
            # Same contract as the executor: storage is result-invisible.
            built = dataclasses.replace(
                built,
                farm=dataclasses.replace(built.farm, trace_backend=trace_backend),
            )
        if controller is not None:
            built = dataclasses.replace(
                built,
                farm=dataclasses.replace(built.farm, controller=controller),
            )
        if qos is not None:
            built = dataclasses.replace(
                built,
                farm=dataclasses.replace(built.farm, qos=qos),
            )
        return built


_REGISTRY: dict[str, Scenario] = {}


def register_scenario(scenario_obj: Scenario) -> Scenario:
    """Publish *scenario_obj* in the global registry (names must be unique)."""
    if scenario_obj.name in _REGISTRY:
        raise ScenarioError(
            f"a scenario named {scenario_obj.name!r} is already registered"
        )
    _REGISTRY[scenario_obj.name] = scenario_obj
    return scenario_obj


def scenario(
    name: str,
    description: str,
    parameters: tuple[ScenarioParameter, ...] = (),
) -> Callable[[ScenarioBuilder], ScenarioBuilder]:
    """Decorator form of :func:`register_scenario` for builder functions."""

    def decorate(builder: ScenarioBuilder) -> ScenarioBuilder:
        register_scenario(
            Scenario(
                name=name,
                description=description,
                builder=builder,
                parameters=parameters,
            )
        )
        return builder

    return decorate


def get_scenario(name: str) -> Scenario:
    """Look a scenario up by name, with a helpful error for unknown names."""
    try:
        return _REGISTRY[name]
    except KeyError as error:
        raise ScenarioError(
            f"unknown scenario {name!r}; available: {', '.join(available_scenarios())}"
        ) from error


def available_scenarios() -> list[str]:
    """Names of every registered scenario, sorted alphabetically."""
    return sorted(_REGISTRY)


def scenario_catalog() -> dict[str, dict[str, Any]]:
    """Full catalogue: description and parameter table per scenario.

    This is the machine-readable form of the README scenario cookbook; the
    docs job checks the two never drift apart.
    """
    catalog: dict[str, dict[str, Any]] = {}
    for name in available_scenarios():
        entry = _REGISTRY[name]
        catalog[name] = {
            "description": entry.description,
            "parameters": {
                parameter.name: {
                    "default": parameter.default,
                    "description": parameter.description,
                }
                for parameter in entry.parameters
            },
        }
    return catalog
