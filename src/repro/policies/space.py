"""Candidate policy spaces.

SleepScale's policy manager evaluates, once per epoch, every candidate policy
in a finite space: the cross product of a small set of DVFS frequencies
(about ten in a real system) and the available low-power states (optionally
including multi-state sequences with entry delays).  :class:`PolicySpace`
enumerates that space for a given (predicted) utilisation, skipping operating
points that would leave the queue unstable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence

import numpy as np

from repro.exceptions import ConfigurationError, PolicySelectionError
from repro.policies.policy import Policy, dvfs_only_policy
from repro.power.dvfs import discrete_pstate_grid, frequency_grid
from repro.power.platform import ServerPowerModel
from repro.power.states import LOW_POWER_STATES, SystemState
from repro.simulation.service_scaling import ServiceScaling, cpu_bound


@dataclass(frozen=True)
class PolicySpace:
    """Enumerable set of candidate (frequency, sleep-state) policies.

    Parameters
    ----------
    power_model:
        Server power model used to instantiate the sleep sequences (sleep
        power for the shallow states depends on the frequency).
    states:
        The candidate low-power states; each becomes a single-state sequence
        entered immediately on idling.  Defaults to all five states the
        paper studies.
    frequencies:
        Explicit DVFS scaling factors to consider.  When ``None`` a grid is
        generated per utilisation (see ``frequency_step`` / ``use_pstates``).
    frequency_step:
        Grid spacing when generating frequencies per utilisation
        (the paper's runtime search uses a coarse grid; 0.05 by default).
    use_pstates:
        If true, use a fixed realistic P-state grid
        (:func:`~repro.power.dvfs.discrete_pstate_grid`) instead of a
        utilisation-dependent fine grid.
    pstate_levels:
        Number of P-states when ``use_pstates`` is true.
    include_dvfs_only:
        Also include the no-sleep (DVFS-only) pseudo policies, used when the
        space backs the DVFS-only baseline strategy.
    deep_entry_delays:
        Optional entry delays (seconds) for two-state sequences
        ``C0(i)S0(i) -> <deepest state>``; empty by default.
    scaling:
        Service-time/frequency dependence used for the stability filter.
    """

    power_model: ServerPowerModel
    states: tuple[SystemState, ...] = tuple(LOW_POWER_STATES)
    frequencies: tuple[float, ...] | None = None
    frequency_step: float = 0.05
    use_pstates: bool = False
    pstate_levels: int = 10
    include_dvfs_only: bool = False
    deep_entry_delays: tuple[float, ...] = field(default_factory=tuple)
    scaling: ServiceScaling = field(default_factory=cpu_bound)

    def __post_init__(self) -> None:
        if not self.states and not self.include_dvfs_only:
            raise ConfigurationError("policy space needs at least one state")
        if self.frequencies is not None and len(self.frequencies) == 0:
            raise ConfigurationError("explicit frequency list must not be empty")
        if any(delay <= 0 for delay in self.deep_entry_delays):
            raise ConfigurationError("deep entry delays must be positive")

    # ------------------------------------------------------------------
    # Frequency candidates
    # ------------------------------------------------------------------

    def candidate_frequencies(self, utilization: float) -> np.ndarray:
        """Stable frequency candidates for the given *utilization*."""
        if not 0.0 <= utilization < 1.0:
            raise ConfigurationError(
                f"utilization must lie in [0, 1), got {utilization}"
            )
        minimum_stable = self.scaling.minimum_stable_frequency(utilization)
        if self.frequencies is not None:
            grid = np.asarray(sorted(self.frequencies), dtype=float)
        elif self.use_pstates:
            grid = discrete_pstate_grid(self.pstate_levels)
        else:
            # The grid starts just above the lowest stable frequency, which
            # depends on how strongly service times scale with frequency
            # (memory-bound workloads are stable at any setting).
            grid = frequency_grid(
                min(minimum_stable, 0.98), step=self.frequency_step
            )
        stable = grid[grid > minimum_stable + 1e-9]
        if stable.size == 0:
            # Fall back to full speed, which is stable whenever rho < 1.
            stable = np.array([1.0])
        if stable[-1] < 1.0 - 1e-9:
            stable = np.append(stable, 1.0)
        return stable

    # ------------------------------------------------------------------
    # Policy enumeration
    # ------------------------------------------------------------------

    def candidate_policies(self, utilization: float) -> list[Policy]:
        """All candidate policies that are stable at *utilization*.

        Raises :class:`~repro.exceptions.PolicySelectionError` when the space
        is empty (which only happens for loads at or above 1).
        """
        frequencies = self.candidate_frequencies(utilization)
        policies: list[Policy] = []
        for frequency in frequencies:
            frequency = float(frequency)
            for state in self.states:
                sequence = self.power_model.immediate_sleep_sequence(
                    state, frequency
                )
                policies.append(Policy(frequency=frequency, sleep=sequence))
            for delay in self.deep_entry_delays:
                deepest = self.states[-1] if self.states else None
                shallow = self.states[0] if self.states else None
                if deepest is None or shallow is None or deepest == shallow:
                    continue
                sequence = self.power_model.sleep_sequence(
                    [shallow, deepest], [0.0, delay], frequency
                )
                policies.append(Policy(frequency=frequency, sleep=sequence))
            if self.include_dvfs_only:
                policies.append(dvfs_only_policy(self.power_model, frequency))
        if not policies:
            raise PolicySelectionError(
                f"no stable candidate policy at utilization {utilization}"
            )
        return policies

    def size(self, utilization: float) -> int:
        """Number of candidate policies at *utilization*."""
        return len(self.candidate_policies(utilization))


def single_state_space(
    power_model: ServerPowerModel,
    state: SystemState,
    **kwargs,
) -> PolicySpace:
    """A policy space restricted to one low-power state (e.g. SS(C3) of Figure 9)."""
    return PolicySpace(power_model=power_model, states=(state,), **kwargs)


def dvfs_only_space(power_model: ServerPowerModel, **kwargs) -> PolicySpace:
    """A policy space with no real sleep state at all (the DVFS-only baseline)."""
    return PolicySpace(
        power_model=power_model, states=(), include_dvfs_only=True, **kwargs
    )


def full_space(
    power_model: ServerPowerModel,
    states: Iterable[SystemState] | None = None,
    **kwargs,
) -> PolicySpace:
    """The default SleepScale policy space: every state, coarse frequency grid."""
    chosen: Sequence[SystemState] = tuple(states) if states is not None else tuple(
        LOW_POWER_STATES
    )
    return PolicySpace(power_model=power_model, states=tuple(chosen), **kwargs)
