"""Run registered scenarios end-to-end and emit a comparable JSON report.

``python -m repro.experiments run-scenario <name>`` builds the named scenario
(:mod:`repro.scenarios`), runs its job stream through its server farm, and
prints one JSON document whose schema is identical across scenarios, so
energy and latency numbers can be compared between e.g. ``diurnal`` and
``flash-crowd`` runs without any per-scenario glue.

Report schema (``repro.scenario-report/v4``; v2 added the ``search``
key recording the policy-search mode, v3 the ``controller`` block
recording farm-level right-sizing, v4 the always-present ``tenants``
block recording the farm-level QoS contract and per-tenant outcomes)::

    {
      "schema": "repro.scenario-report/v4",
      "scenario": str,            # registered scenario name
      "description": str,
      "seed": int,
      "backend": "vectorized" | "reference",
      "search": "full" | "frontier",
      "parameters": {name: value, ...},        # resolved builder parameters
      "workload": {
        "name": str,                           # WorkloadSpec name
        "mean_service_time_s": float,
        "num_jobs": int,
        "duration_s": float                    # first to last arrival
      },
      "farm": {
        "servers": [{"name": str, "platform": str}, ...],
        "platforms": [str, ...],               # distinct, in server order
        "heterogeneous": bool,
        "dispatcher": str                      # dispatcher class name
      },
      "energy": {
        "total_joules": float,          # parked servers' sleep-walk energy included
        "average_power_w": float,
        "average_power_per_server_w": float   # parked servers contribute idle power
      },
      "response_time": {
        "mean_s": float, "p50_s": float, "p95_s": float, "p99_s": float,
        "normalized_mean": float,              # mu * E[R]
        "budget": float,                       # normalised budget in force
        "meets_budget": bool
      },
      "controller": null | {              # farm-level right-sizing, if any
        "policy": "always-on" | "reactive" | "predictive",
        "min_awake": int,
        "setup_latency_s": float,
        "setup_energy_joules": float,      # total paid for wake transitions
        "awake_counts": [int, ...],        # commanded-on servers per epoch
        "wake_transitions": int            # number of paid wakes
      },
      "tenants": {                        # farm-level QoS contract (always present)
        "mode": "none" | "strictest" | "per-tenant",
        "constraint": str | null,          # farm-level constraint description
        "rows": [                          # per-tenant outcomes; [] unless per-tenant
          {"name": str, "weight": float, "priority": int, "qos": str,
           "num_jobs": int, "mean_response_time_s": float | null,
           "p95_s": float | null, "p99_s": float | null,
           "meets_budget": bool, "slack": float | null},
          ...
        ],
        "isolation": null | [              # combined-vs-solo rows (--isolation)
          {"name": str, "combined_p95_s": float | null, "solo_p95_s": float | null,
           "combined_p99_s": float | null, "solo_p99_s": float | null,
           "p95_delta_s": float | null, "p99_delta_s": float | null,
           "meets_budget_combined": bool, "meets_budget_solo": bool,
           "interference_violation": bool},
          ...
        ]
      },
      "state_selection_fractions": {state: fraction, ...},   # sums to 1
      "per_server": [
        {"server": str, "num_jobs": int,
         "mean_response_time_s": float | null, "average_power_w": float | null},
        ...
      ]
    }

NaN is not valid JSON, so metrics that are undefined for a slot (an idle
server's latency) are serialised as ``null``.  :func:`validate_report` checks
a report against this schema and is what the scenario round-trip tests and
the CI smoke matrix call.
"""

from __future__ import annotations

import argparse
import ast
import dataclasses
import json
import math
import sys
from collections.abc import Mapping
from typing import Any

from repro.cluster.controller import (
    CONTROLLER_POLICIES,
    FarmController,
    SetupModel,
)
from repro.cluster.farm import FarmResult
from repro.cluster.tenancy import (
    FARM_QOS_MODES,
    FarmQos,
    TenantIsolation,
    isolation_report,
)
from repro.concurrency import EXECUTORS, Executor
from repro.core.qos import (
    QosConstraint,
    mean_qos_from_baseline,
    percentile_qos_from_baseline,
)
from repro.exceptions import ExperimentError
from repro.scenarios import (
    BuiltScenario,
    available_scenarios,
    get_scenario,
    scenario_catalog,
)
from repro.core.search import SEARCHES, SEARCH_FULL
from repro.simulation.kernel import BACKENDS, BACKEND_VECTORIZED
from repro.workloads.storage import TRACE_BACKENDS

#: Version tag stamped into (and required from) every scenario report.
REPORT_SCHEMA = "repro.scenario-report/v4"

#: Peak design utilisation behind the ``--tenant ...:qos=...`` budget
#: families (matches the scenario library's baseline, the paper's 0.8).
_BASELINE_RHO_B = 0.8

#: Constraint families a ``--tenant`` flag may select for a tenant.
_TENANT_QOS_KINDS = ("mean", "p95", "p99")


def _finite_or_none(value: float) -> float | None:
    """JSON has no NaN/inf; undefined metrics become ``null``."""
    value = float(value)
    return value if math.isfinite(value) else None


def report_from_result(
    built: BuiltScenario,
    result: FarmResult,
    *,
    isolation: tuple[TenantIsolation, ...] | None = None,
) -> dict[str, Any]:
    """Assemble the schema-versioned report for one scenario run.

    Works for any :class:`BuiltScenario` — registered or hand-constructed —
    because everything the report needs is carried on the built object.
    *isolation* carries pre-computed combined-vs-solo rows (from
    :func:`repro.cluster.tenancy.isolation_report`) into the ``tenants``
    block; without it the block's ``isolation`` entry is ``null``.
    """
    per_server = []
    for row in result.per_server_rows():
        per_server.append(
            {
                "server": row["server"],
                "num_jobs": int(row["num_jobs"]),
                "mean_response_time_s": _finite_or_none(row["mean_response_time_s"]),
                "average_power_w": _finite_or_none(row["average_power_w"]),
            }
        )
    servers = [
        {"name": spec.name, "platform": spec.power_model.name}
        for spec in built.farm.servers
    ]
    return {
        "schema": REPORT_SCHEMA,
        "scenario": built.name,
        "description": built.description,
        "seed": built.seed,
        "backend": built.backend,
        "search": built.search,
        "parameters": dict(built.parameters),
        "workload": {
            "name": built.spec.name,
            "mean_service_time_s": built.spec.mean_service_time,
            "num_jobs": built.num_jobs,
            "duration_s": built.duration,
        },
        "farm": {
            "servers": servers,
            "platforms": list(built.farm.platform_names),
            "heterogeneous": built.farm.is_heterogeneous,
            "dispatcher": type(built.farm.dispatcher).__name__,
        },
        "energy": {
            "total_joules": result.total_energy,
            "average_power_w": result.total_average_power,
            "average_power_per_server_w": result.average_power_per_server,
        },
        "response_time": {
            "mean_s": result.mean_response_time,
            "p50_s": result.response_time_percentile(50.0),
            "p95_s": result.response_time_percentile(95.0),
            "p99_s": result.response_time_percentile(99.0),
            "normalized_mean": result.normalized_mean_response_time,
            "budget": result.response_time_budget,
            "meets_budget": bool(result.meets_budget),
        },
        "controller": _controller_block(built, result),
        "tenants": _tenants_block(built, result, isolation),
        "state_selection_fractions": result.state_selection_fractions(),
        "per_server": per_server,
    }


def _controller_block(
    built: BuiltScenario, result: FarmResult
) -> dict[str, Any] | None:
    """The v3 ``controller`` report section (``None`` on uncontrolled runs)."""
    controller = built.farm.controller
    if controller is None:
        return None
    transitions = result.wake_transitions or ()
    return {
        "policy": controller.policy_name,
        "min_awake": controller.min_awake,
        "setup_latency_s": controller.setup.latency_s,
        "setup_energy_joules": result.setup_energy,
        "awake_counts": [int(count) for count in (result.awake_counts or ())],
        "wake_transitions": sum(1 for _t, _s, kind in transitions if kind == "wake"),
    }


def _tenants_block(
    built: BuiltScenario,
    result: FarmResult,
    isolation: tuple[TenantIsolation, ...] | None,
) -> dict[str, Any]:
    """The v4 ``tenants`` report section (always present).

    ``mode`` is ``"none"`` when the farm carries no :class:`FarmQos` at
    all, else the qos mode; ``rows`` holds per-tenant outcomes (empty
    outside per-tenant mode, where there is nothing tenant-shaped to
    report).
    """
    qos = built.farm.qos
    if qos is None:
        return {"mode": "none", "constraint": None, "rows": [], "isolation": None}
    constraint = qos.composite_constraint()
    rows = [
        {
            "name": row.name,
            "weight": row.weight,
            "priority": row.priority,
            "qos": row.qos_description,
            "num_jobs": row.num_jobs,
            "mean_response_time_s": _finite_or_none(row.mean_response_time),
            "p95_s": _finite_or_none(row.p95),
            "p99_s": _finite_or_none(row.p99),
            "meets_budget": bool(row.meets_budget),
            "slack": _finite_or_none(row.slack),
        }
        for row in result.tenant_rows()
    ]
    isolation_rows = None
    if isolation is not None:
        isolation_rows = [
            {
                "name": row.name,
                "combined_p95_s": _finite_or_none(row.combined_p95),
                "solo_p95_s": _finite_or_none(row.solo_p95),
                "combined_p99_s": _finite_or_none(row.combined_p99),
                "solo_p99_s": _finite_or_none(row.solo_p99),
                "p95_delta_s": _finite_or_none(row.p95_delta),
                "p99_delta_s": _finite_or_none(row.p99_delta),
                "meets_budget_combined": bool(row.meets_budget_combined),
                "meets_budget_solo": bool(row.meets_budget_solo),
                "interference_violation": bool(row.interference_violation),
            }
            for row in isolation
        ]
    return {
        "mode": qos.mode,
        "constraint": None if constraint is None else constraint.describe(),
        "rows": rows,
        "isolation": isolation_rows,
    }


def run_scenario(
    name: str,
    *,
    seed: int = 0,
    backend: str = BACKEND_VECTORIZED,
    search: str = SEARCH_FULL,
    executor: Executor | str | None = None,
    max_workers: int | None = None,
    chunk_jobs: int | None = None,
    trace_backend: str | None = None,
    controller: FarmController | str | None = None,
    setup_latency_s: float | None = None,
    setup_energy_j: float | None = None,
    min_awake: int | None = None,
    qos: FarmQos | QosConstraint | None = None,
    tenants: list[str] | None = None,
    isolation: bool = False,
    overrides: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Build, run and report one registered scenario.

    *overrides* maps declared parameter names to values (unknown names are
    rejected by the scenario).  *executor*/*max_workers* select how the farm
    fans its per-server epoch loops out (serial, thread pool, or process
    sharding — the report is identical whichever executes, which is why the
    schema carries no executor field).  *trace_backend* selects where the
    trace's arrays live while the farm runs (``"memory"``/``"shm"``/
    ``"mmap"``; storage is result-invisible like the executor, so the schema
    carries no backend field either).  *chunk_jobs* overrides the farm's
    streaming chunk size (``0`` forces a one-shot run even if the scenario
    configured chunking).  *controller* attaches a farm-level right-sizing
    controller (a :class:`~repro.cluster.controller.FarmController` or a
    policy name — with a name, *setup_latency_s*, *setup_energy_j* and
    *min_awake* flesh out its :class:`~repro.cluster.controller.SetupModel`),
    replacing any controller the scenario embedded.  *qos* attaches a
    farm-level QoS contract, replacing any the scenario embedded.
    *tenants* is a list of ``--tenant``-style specs
    (``"name:qos=p95:weight=2:priority=1"``) adjusting single tenants of a
    per-tenant scenario: budgets, dispatch weights and priorities are
    rebuilt (including the tenant-aware dispatcher's partitions), while the
    per-server policy-search budgets the builder embedded are untouched.
    *isolation* additionally runs each tenant's sub-stream solo and fills
    the report's ``tenants.isolation`` rows (per-tenant scenarios only).
    The returned report is already validated against
    :data:`REPORT_SCHEMA`.
    """
    overrides = dict(overrides or {})
    # 'seed'/'backend' are build() keywords, not scenario parameters; caught
    # here they produce a pointer to the right flag instead of a TypeError
    # from the keyword splat below.
    reserved = sorted(
        set(overrides)
        & {
            "seed",
            "backend",
            "search",
            "executor",
            "trace_backend",
            "controller",
            "qos",
        }
    )
    if reserved:
        raise ExperimentError(
            f"{', '.join(reserved)} cannot be set via overrides; use the "
            "dedicated seed/backend/search/executor/trace_backend/controller/"
            "qos arguments (CLI: --seed / --backend / --search-mode / "
            "--executor / --trace-backend / --controller / --tenant)"
        )
    setup_flags = (setup_latency_s, setup_energy_j, min_awake)
    if controller is None and any(flag is not None for flag in setup_flags):
        raise ExperimentError(
            "--setup-latency / --setup-energy / --min-awake configure the "
            "controller and require --controller"
        )
    if isinstance(controller, str):
        controller = FarmController(
            policy=controller,
            setup=SetupModel(
                latency_s=setup_latency_s if setup_latency_s is not None else 0.0,
                energy_j=setup_energy_j,
            ),
            min_awake=min_awake if min_awake is not None else 1,
        )
    elif controller is not None and any(flag is not None for flag in setup_flags):
        raise ExperimentError(
            "setup_latency_s / setup_energy_j / min_awake only apply when "
            "the controller is given as a policy name; configure the "
            "FarmController instance directly instead"
        )
    built = get_scenario(name).build(
        seed=seed,
        backend=backend,
        search=search,
        executor=executor,
        trace_backend=trace_backend,
        controller=controller,
        qos=qos,
        **overrides,
    )
    if tenants:
        built = _apply_tenant_overrides(built, tenants)
    farm = built.farm
    if max_workers is not None:
        # dataclasses.replace re-runs ServerFarm.__post_init__, so an invalid
        # worker count is rejected rather than silently running serially.
        farm = dataclasses.replace(farm, max_workers=max_workers)
    if chunk_jobs is not None:
        farm = dataclasses.replace(
            farm, chunk_jobs=None if chunk_jobs == 0 else chunk_jobs
        )
    isolation_rows: tuple[TenantIsolation, ...] | None = None
    if isolation:
        farm_qos = farm.qos
        if farm_qos is None or not farm_qos.is_per_tenant:
            raise ExperimentError(
                "--isolation needs a per-tenant scenario (farm qos built "
                f"with FarmQos.per_tenant); scenario {name!r} has none"
            )
        # isolation_report runs the combined trace once and reuses it, so
        # the combined numbers in the report are the same run either way.
        result, isolation_rows = isolation_report(farm, built.jobs)
    else:
        result = farm.run(built.jobs)
    # The report describes what actually ran: surface tenant overrides too.
    built = dataclasses.replace(built, farm=farm)
    report = report_from_result(built, result, isolation=isolation_rows)
    validate_report(report)
    return report


def _parse_tenant_spec(text: str) -> tuple[str, dict[str, Any]]:
    """Parse one ``--tenant name:key=value[:key=value...]`` flag.

    Keys: ``qos`` (one of ``mean``/``p95``/``p99``, selecting the
    baseline-derived constraint family), ``weight`` (positive float) and
    ``priority`` (int).
    """
    name, separator, rest = text.partition(":")
    if not separator or not name or not rest:
        raise ExperimentError(
            f"tenant spec {text!r} must have the form "
            "name:key=value[:key=value...]"
        )
    settings: dict[str, Any] = {}
    for part in rest.split(":"):
        key, assign, raw = part.partition("=")
        if not assign or not key:
            raise ExperimentError(
                f"tenant setting {part!r} (in {text!r}) must have the form "
                "key=value"
            )
        if key == "qos":
            if raw not in _TENANT_QOS_KINDS:
                raise ExperimentError(
                    f"tenant qos must be one of {', '.join(_TENANT_QOS_KINDS)}, "
                    f"got {raw!r}"
                )
            settings[key] = raw
        elif key == "weight":
            try:
                weight = float(raw)
            except ValueError:
                raise ExperimentError(
                    f"tenant weight must be a number, got {raw!r}"
                ) from None
            if not math.isfinite(weight) or weight <= 0:
                raise ExperimentError(
                    f"tenant weight must be positive and finite, got {raw!r}"
                )
            settings[key] = weight
        elif key == "priority":
            try:
                settings[key] = int(raw)
            except ValueError:
                raise ExperimentError(
                    f"tenant priority must be an integer, got {raw!r}"
                ) from None
        else:
            raise ExperimentError(
                f"unknown tenant setting {key!r} (in {text!r}); "
                "expected qos, weight or priority"
            )
    return name, settings


def _apply_tenant_overrides(
    built: BuiltScenario, tenant_specs: list[str]
) -> BuiltScenario:
    """Rebuild the farm's per-tenant :class:`FarmQos` from ``--tenant`` flags.

    The tenant-aware dispatcher (if any) is rebuilt over the adjusted
    tenant table so weights and priorities take effect in dispatch, not
    just in reporting.
    """
    farm = built.farm
    farm_qos = farm.qos
    if farm_qos is None or not farm_qos.is_per_tenant:
        raise ExperimentError(
            "--tenant adjusts a per-tenant scenario (farm qos built with "
            f"FarmQos.per_tenant); scenario {built.name!r} has none"
        )
    table = list(farm_qos.tenants)
    names = [tenant.name for tenant in table]
    for text in tenant_specs:
        name, settings = _parse_tenant_spec(text)
        if name not in names:
            raise ExperimentError(
                f"unknown tenant {name!r}; scenario {built.name!r} declares: "
                f"{', '.join(names)}"
            )
        index = names.index(name)
        spec = table[index]
        changes: dict[str, Any] = {}
        if "qos" in settings:
            kind = settings["qos"]
            if kind == "mean":
                constraint: QosConstraint = mean_qos_from_baseline(_BASELINE_RHO_B)
            else:
                constraint = percentile_qos_from_baseline(
                    _BASELINE_RHO_B,
                    built.spec.mean_service_time,
                    percentile=95.0 if kind == "p95" else 99.0,
                )
            changes["qos"] = constraint
        if "weight" in settings:
            changes["weight"] = settings["weight"]
        if "priority" in settings:
            changes["priority"] = settings["priority"]
        table[index] = dataclasses.replace(spec, **changes)
    new_qos = FarmQos.per_tenant(*table)
    dispatcher = farm.dispatcher
    with_tenants = getattr(dispatcher, "with_tenants", None)
    if callable(with_tenants):
        dispatcher = with_tenants(tuple(table))
    farm = dataclasses.replace(farm, qos=new_qos, dispatcher=dispatcher)
    return dataclasses.replace(built, farm=farm)


# ---------------------------------------------------------------------------
# Schema validation
# ---------------------------------------------------------------------------

_NUMBER = (int, float)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ExperimentError(f"invalid scenario report: {message}")


def _require_keys(mapping: Any, keys: set[str], where: str) -> None:
    _require(isinstance(mapping, dict), f"{where} must be an object")
    _require(
        set(mapping) == keys,
        f"{where} must have exactly the keys {sorted(keys)}, got {sorted(mapping)}",
    )


def _require_finite_number(value: Any, where: str) -> None:
    _require(
        isinstance(value, _NUMBER) and not isinstance(value, bool),
        f"{where} must be a number",
    )
    _require(math.isfinite(value), f"{where} must be finite")


def validate_report(report: Any) -> None:
    """Check *report* against the ``repro.scenario-report/v4`` schema.

    Raises :class:`~repro.exceptions.ExperimentError` on the first violation;
    returns ``None`` on success.  The check is structural (keys, types,
    finiteness, fractions summing to one) — it does not re-run the scenario.
    """
    _require_keys(
        report,
        {
            "schema",
            "scenario",
            "description",
            "seed",
            "backend",
            "search",
            "parameters",
            "workload",
            "farm",
            "energy",
            "response_time",
            "controller",
            "tenants",
            "state_selection_fractions",
            "per_server",
        },
        "report",
    )
    _require(report["schema"] == REPORT_SCHEMA, f"schema must be {REPORT_SCHEMA!r}")
    for key in ("scenario", "description"):
        _require(
            isinstance(report[key], str) and report[key],
            f"{key} must be a non-empty string",
        )
    _require(
        isinstance(report["seed"], int) and not isinstance(report["seed"], bool),
        "seed must be an integer",
    )
    _require(report["backend"] in BACKENDS, f"backend must be one of {BACKENDS}")
    _require(report["search"] in SEARCHES, f"search must be one of {SEARCHES}")
    _require(isinstance(report["parameters"], dict), "parameters must be an object")

    workload = report["workload"]
    _require_keys(
        workload,
        {"name", "mean_service_time_s", "num_jobs", "duration_s"},
        "workload",
    )
    _require(isinstance(workload["name"], str), "workload.name must be a string")
    _require_finite_number(workload["mean_service_time_s"], "workload.mean_service_time_s")
    _require(workload["mean_service_time_s"] > 0, "workload.mean_service_time_s must be positive")
    _require(
        isinstance(workload["num_jobs"], int) and workload["num_jobs"] > 0,
        "workload.num_jobs must be a positive integer",
    )
    _require_finite_number(workload["duration_s"], "workload.duration_s")

    farm = report["farm"]
    _require_keys(
        farm, {"servers", "platforms", "heterogeneous", "dispatcher"}, "farm"
    )
    _require(
        isinstance(farm["servers"], list) and farm["servers"],
        "farm.servers must be a non-empty list",
    )
    for entry in farm["servers"]:
        _require_keys(entry, {"name", "platform"}, "farm.servers[*]")
        _require(
            isinstance(entry["name"], str) and isinstance(entry["platform"], str),
            "farm.servers[*] fields must be strings",
        )
    _require(
        isinstance(farm["platforms"], list) and farm["platforms"],
        "farm.platforms must be a non-empty list",
    )
    _require(isinstance(farm["heterogeneous"], bool), "farm.heterogeneous must be a bool")
    _require(
        farm["heterogeneous"] == (len(farm["platforms"]) > 1),
        "farm.heterogeneous must match the distinct platform count",
    )
    _require(isinstance(farm["dispatcher"], str), "farm.dispatcher must be a string")

    energy = report["energy"]
    _require_keys(
        energy,
        {"total_joules", "average_power_w", "average_power_per_server_w"},
        "energy",
    )
    for key, value in energy.items():
        _require_finite_number(value, f"energy.{key}")
        _require(value >= 0, f"energy.{key} must be non-negative")

    response = report["response_time"]
    _require_keys(
        response,
        {"mean_s", "p50_s", "p95_s", "p99_s", "normalized_mean", "budget", "meets_budget"},
        "response_time",
    )
    _require(isinstance(response["meets_budget"], bool), "response_time.meets_budget must be a bool")
    for key in ("mean_s", "p50_s", "p95_s", "p99_s", "normalized_mean", "budget"):
        _require_finite_number(response[key], f"response_time.{key}")
        _require(response[key] >= 0, f"response_time.{key} must be non-negative")
    _require(
        response["p50_s"] <= response["p95_s"] <= response["p99_s"],
        "response-time percentiles must be non-decreasing",
    )

    controller = report["controller"]
    if controller is not None:
        _require_keys(
            controller,
            {
                "policy",
                "min_awake",
                "setup_latency_s",
                "setup_energy_joules",
                "awake_counts",
                "wake_transitions",
            },
            "controller",
        )
        _require(
            controller["policy"] in CONTROLLER_POLICIES,
            f"controller.policy must be one of {CONTROLLER_POLICIES}",
        )
        _require(
            isinstance(controller["min_awake"], int)
            and not isinstance(controller["min_awake"], bool)
            and controller["min_awake"] >= 1,
            "controller.min_awake must be a positive integer",
        )
        for key in ("setup_latency_s", "setup_energy_joules"):
            _require_finite_number(controller[key], f"controller.{key}")
            _require(controller[key] >= 0, f"controller.{key} must be non-negative")
        counts = controller["awake_counts"]
        _require(
            isinstance(counts, list) and counts,
            "controller.awake_counts must be a non-empty list",
        )
        for count in counts:
            _require(
                isinstance(count, int)
                and not isinstance(count, bool)
                and 0 <= count <= len(farm["servers"]),
                "controller.awake_counts entries must be integers in "
                "[0, num_servers]",
            )
        _require(
            isinstance(controller["wake_transitions"], int)
            and not isinstance(controller["wake_transitions"], bool)
            and controller["wake_transitions"] >= 0,
            "controller.wake_transitions must be a non-negative integer",
        )

    tenants = report["tenants"]
    _require_keys(tenants, {"mode", "constraint", "rows", "isolation"}, "tenants")
    _require(
        tenants["mode"] in ("none",) + FARM_QOS_MODES,
        f"tenants.mode must be 'none' or one of {FARM_QOS_MODES}",
    )
    _require(
        tenants["constraint"] is None or isinstance(tenants["constraint"], str),
        "tenants.constraint must be a string or null",
    )
    _require(isinstance(tenants["rows"], list), "tenants.rows must be a list")
    if tenants["mode"] != "per-tenant":
        _require(
            tenants["rows"] == [] and tenants["isolation"] is None,
            "tenants.rows/isolation only apply in per-tenant mode",
        )
    else:
        _require(tenants["rows"] != [], "per-tenant mode must report tenant rows")
    tenant_names = []
    tenant_jobs = 0
    for row in tenants["rows"]:
        _require_keys(
            row,
            {
                "name",
                "weight",
                "priority",
                "qos",
                "num_jobs",
                "mean_response_time_s",
                "p95_s",
                "p99_s",
                "meets_budget",
                "slack",
            },
            "tenants.rows[*]",
        )
        _require(
            isinstance(row["name"], str) and row["name"],
            "tenants.rows[*].name must be a non-empty string",
        )
        tenant_names.append(row["name"])
        _require_finite_number(row["weight"], "tenants.rows[*].weight")
        _require(row["weight"] > 0, "tenants.rows[*].weight must be positive")
        _require(
            isinstance(row["priority"], int) and not isinstance(row["priority"], bool),
            "tenants.rows[*].priority must be an integer",
        )
        _require(isinstance(row["qos"], str), "tenants.rows[*].qos must be a string")
        _require(
            isinstance(row["num_jobs"], int)
            and not isinstance(row["num_jobs"], bool)
            and row["num_jobs"] >= 0,
            "tenants.rows[*].num_jobs must be a non-negative integer",
        )
        tenant_jobs += row["num_jobs"]
        _require(
            isinstance(row["meets_budget"], bool),
            "tenants.rows[*].meets_budget must be a bool",
        )
        for key in ("mean_response_time_s", "p95_s", "p99_s", "slack"):
            if row[key] is not None:
                _require_finite_number(row[key], f"tenants.rows[*].{key}")
    _require(
        len(set(tenant_names)) == len(tenant_names),
        "tenants.rows names must be unique",
    )
    if tenants["mode"] == "per-tenant":
        _require(
            tenant_jobs == workload["num_jobs"],
            "per-tenant job counts must sum to workload.num_jobs "
            "(job conservation)",
        )
    if tenants["isolation"] is not None:
        _require(
            isinstance(tenants["isolation"], list),
            "tenants.isolation must be a list or null",
        )
        for row in tenants["isolation"]:
            _require_keys(
                row,
                {
                    "name",
                    "combined_p95_s",
                    "solo_p95_s",
                    "combined_p99_s",
                    "solo_p99_s",
                    "p95_delta_s",
                    "p99_delta_s",
                    "meets_budget_combined",
                    "meets_budget_solo",
                    "interference_violation",
                },
                "tenants.isolation[*]",
            )
            _require(
                isinstance(row["name"], str) and row["name"] in tenant_names,
                "tenants.isolation[*].name must match a tenant row",
            )
            for key in (
                "combined_p95_s",
                "solo_p95_s",
                "combined_p99_s",
                "solo_p99_s",
                "p95_delta_s",
                "p99_delta_s",
            ):
                if row[key] is not None:
                    _require_finite_number(row[key], f"tenants.isolation[*].{key}")
            for key in (
                "meets_budget_combined",
                "meets_budget_solo",
                "interference_violation",
            ):
                _require(
                    isinstance(row[key], bool),
                    f"tenants.isolation[*].{key} must be a bool",
                )

    fractions = report["state_selection_fractions"]
    _require(
        isinstance(fractions, dict) and fractions,
        "state_selection_fractions must be a non-empty object",
    )
    for state, fraction in fractions.items():
        _require(isinstance(state, str), "state names must be strings")
        _require_finite_number(fraction, f"state_selection_fractions[{state!r}]")
        _require(
            0.0 <= fraction <= 1.0,
            f"state_selection_fractions[{state!r}] must lie in [0, 1]",
        )
    _require(
        abs(sum(fractions.values()) - 1.0) < 1e-9,
        "state_selection_fractions must sum to 1",
    )

    per_server = report["per_server"]
    _require(
        isinstance(per_server, list) and len(per_server) == len(farm["servers"]),
        "per_server must list one entry per farm server",
    )
    total_jobs = 0
    for entry in per_server:
        _require_keys(
            entry,
            {"server", "num_jobs", "mean_response_time_s", "average_power_w"},
            "per_server[*]",
        )
        _require(
            isinstance(entry["num_jobs"], int) and entry["num_jobs"] >= 0,
            "per_server[*].num_jobs must be a non-negative integer",
        )
        total_jobs += entry["num_jobs"]
        for key in ("mean_response_time_s", "average_power_w"):
            if entry[key] is not None:
                _require_finite_number(entry[key], f"per_server[*].{key}")
    _require(
        total_jobs == workload["num_jobs"],
        "per-server job counts must sum to workload.num_jobs (job conservation)",
    )


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def _parse_override(text: str) -> tuple[str, Any]:
    """Parse a ``--set key=value`` flag; values use Python literal syntax."""
    key, separator, raw = text.partition("=")
    if not separator or not key:
        raise ExperimentError(
            f"override {text!r} must have the form key=value"
        )
    try:
        value = ast.literal_eval(raw)
    except (ValueError, SyntaxError):
        value = raw  # plain strings may be given unquoted
    return key, value


def list_scenarios_main() -> int:
    """CLI for ``python -m repro.experiments list-scenarios``."""
    catalog = scenario_catalog()
    for name in available_scenarios():
        print(f"{name}: {catalog[name]['description']}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI for ``python -m repro.experiments run-scenario``."""
    parser = argparse.ArgumentParser(
        prog="repro.experiments run-scenario",
        description="Run a registered scenario and print its JSON report.",
    )
    parser.add_argument(
        "scenario",
        help="scenario name (see `python -m repro.experiments list-scenarios`)",
    )
    parser.add_argument("--seed", type=int, default=0, help="base random seed")
    parser.add_argument(
        "--backend",
        choices=list(BACKENDS),
        default=BACKEND_VECTORIZED,
        help="simulation backend for the per-epoch policy search",
    )
    parser.add_argument(
        "--search-mode",
        choices=list(SEARCHES),
        default=SEARCH_FULL,
        help=(
            "per-epoch policy-search mode: 'full' walks the whole candidate "
            "grid, 'frontier' bisects it with a farm-shared characterisation "
            "cache (selected policies are identical either way)"
        ),
    )
    parser.add_argument(
        "--executor",
        choices=list(EXECUTORS),
        default=None,
        help=(
            "how per-server epoch loops execute: 'serial', 'thread', or "
            "'process' (shards the farm across worker processes for "
            "multi-core runs); the report is identical whichever executes"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "pool size for --executor thread/process (default: --executor "
            "thread alone sizes from the machine; without --executor, N > 1 "
            "selects the historical thread pool)"
        ),
    )
    parser.add_argument(
        "--chunk-jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "stream the trace through the farm in arrival-ordered chunks of "
            "N jobs (0 forces a one-shot run); results are identical either way"
        ),
    )
    parser.add_argument(
        "--trace-backend",
        choices=list(TRACE_BACKENDS),
        default=None,
        help=(
            "where the trace's arrays live while the farm runs: 'memory' "
            "(default), 'shm' (zero-copy process sharding via shared-memory "
            "descriptors), or 'mmap' (trace memory-mapped from a .npy file, "
            "for larger-than-RAM runs); results are identical whichever is "
            "selected"
        ),
    )
    parser.add_argument(
        "--controller",
        choices=list(CONTROLLER_POLICIES),
        default=None,
        help=(
            "attach a farm-level right-sizing controller with this policy "
            "(replacing any controller the scenario embeds); 'always-on' with "
            "zero setup costs reproduces the controller-less run bit for bit"
        ),
    )
    parser.add_argument(
        "--setup-latency",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "seconds a woken server needs before it can serve (requires "
            "--controller; default 0)"
        ),
    )
    parser.add_argument(
        "--setup-energy",
        type=float,
        default=None,
        metavar="JOULES",
        help=(
            "energy charged per wake transition (requires --controller; "
            "default: setup latency at the woken server's peak power)"
        ),
    )
    parser.add_argument(
        "--min-awake",
        type=int,
        default=None,
        metavar="N",
        help=(
            "servers the controller must keep serviceable at all times "
            "(requires --controller; default 1)"
        ),
    )
    parser.add_argument(
        "--tenant",
        dest="tenants",
        action="append",
        default=[],
        metavar="NAME:KEY=VALUE[:KEY=VALUE...]",
        help=(
            "override a declared tenant of a per-tenant scenario "
            "(repeatable); keys: qos=mean|p95|p99, weight=FLOAT, "
            "priority=INT, e.g. --tenant victim:qos=p95:weight=2"
        ),
    )
    parser.add_argument(
        "--isolation",
        action="store_true",
        help=(
            "also run each tenant solo and report interference deltas "
            "(per-tenant scenarios only)"
        ),
    )
    parser.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="override a declared scenario parameter (repeatable)",
    )
    parser.add_argument(
        "--output",
        type=str,
        default=None,
        metavar="FILE",
        help="also write the JSON report to FILE",
    )
    arguments = parser.parse_args(argv)
    if arguments.workers is not None and arguments.workers < 1:
        parser.error(f"--workers must be at least 1, got {arguments.workers}")
    if arguments.chunk_jobs is not None and arguments.chunk_jobs < 0:
        parser.error(
            f"--chunk-jobs must be non-negative, got {arguments.chunk_jobs}"
        )

    overrides = dict(_parse_override(item) for item in arguments.overrides)
    report = run_scenario(
        arguments.scenario,
        seed=arguments.seed,
        backend=arguments.backend,
        search=arguments.search_mode,
        executor=arguments.executor,
        max_workers=arguments.workers,
        chunk_jobs=arguments.chunk_jobs,
        trace_backend=arguments.trace_backend,
        controller=arguments.controller,
        setup_latency_s=arguments.setup_latency,
        setup_energy_j=arguments.setup_energy,
        min_awake=arguments.min_awake,
        tenants=arguments.tenants,
        isolation=arguments.isolation,
        overrides=overrides,
    )
    text = json.dumps(report, indent=2, sort_keys=False)
    print(text)
    if arguments.output:
        with open(arguments.output, "w") as handle:
            handle.write(text + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
