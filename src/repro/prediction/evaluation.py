"""Predictor evaluation helpers.

These utilities replay a utilisation trace through a predictor causally
(predict the next minute, then reveal it) and report the usual accuracy
metrics.  They are used by the predictor unit tests and by the Figure 8
ablation benchmark that relates prediction accuracy to response time.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.exceptions import PredictionError
from repro.prediction.base import UtilizationPredictor
from repro.workloads.traces import UtilizationTrace


@dataclass(frozen=True)
class PredictionAccuracy:
    """Accuracy metrics of one predictor over one trace."""

    predictor: str
    mean_absolute_error: float
    root_mean_squared_error: float
    max_absolute_error: float
    bias: float

    def summary(self) -> dict[str, float]:
        """Flat metric dictionary for reports."""
        return {
            "mae": self.mean_absolute_error,
            "rmse": self.root_mean_squared_error,
            "max_error": self.max_absolute_error,
            "bias": self.bias,
        }


def replay(
    predictor: UtilizationPredictor,
    utilizations: Sequence[float] | np.ndarray | UtilizationTrace,
) -> tuple[np.ndarray, np.ndarray]:
    """Run *predictor* causally over a utilisation sequence.

    Returns ``(predictions, truths)`` where ``predictions[i]`` was issued
    *before* ``truths[i]`` was revealed to the predictor.  The predictor is
    reset before the replay.
    """
    if isinstance(utilizations, UtilizationTrace):
        values = np.asarray(utilizations.values, dtype=float)
    else:
        values = np.asarray(utilizations, dtype=float)
    if values.size == 0:
        raise PredictionError("cannot replay an empty utilisation sequence")
    predictor.reset()
    predictions = np.empty(values.size)
    for index, truth in enumerate(values):
        predictions[index] = predictor.predict()
        predictor.observe(float(truth))
    return predictions, values


def evaluate_predictor(
    predictor: UtilizationPredictor,
    utilizations: Sequence[float] | np.ndarray | UtilizationTrace,
    warm_up: int = 0,
) -> PredictionAccuracy:
    """Replay a predictor over a trace and compute accuracy metrics.

    ``warm_up`` initial minutes are excluded from the metrics (the predictor
    still observes them), which avoids penalising filters for their cold
    start when comparing long traces.
    """
    predictions, truths = replay(predictor, utilizations)
    if warm_up < 0 or warm_up >= truths.size:
        raise PredictionError(
            f"warm_up must lie in [0, {truths.size}), got {warm_up}"
        )
    errors = predictions[warm_up:] - truths[warm_up:]
    return PredictionAccuracy(
        predictor=predictor.name,
        mean_absolute_error=float(np.mean(np.abs(errors))),
        root_mean_squared_error=float(np.sqrt(np.mean(errors**2))),
        max_absolute_error=float(np.max(np.abs(errors))),
        bias=float(np.mean(errors)),
    )


def compare_predictors(
    predictors: Sequence[UtilizationPredictor],
    utilizations: Sequence[float] | np.ndarray | UtilizationTrace,
    warm_up: int = 0,
) -> dict[str, PredictionAccuracy]:
    """Evaluate several predictors on the same trace."""
    return {
        predictor.name: evaluate_predictor(predictor, utilizations, warm_up)
        for predictor in predictors
    }
