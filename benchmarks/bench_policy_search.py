"""Policy-search engine benchmark: frontier + cache vs. the full grid.

Measures the epoch-loop policy search — the per-epoch characterisation and
selection inside ``select_policy`` — on two workloads:

* a **200-epoch diurnal run** (one Xeon SleepScale server, Google-like jobs,
  5-minute epochs, one day/night cycle), and
* the **16-server heterogeneous farm** (8 Xeon + 8 Atom behind a power-aware
  dispatcher, the farm-scale regime of constant heavy aggregate load),

each executed twice: ``search="full"`` (the exhaustive grid, the oracle) and
``search="frontier"`` (bisected frontier search with a farm-shared
characterisation cache).  **Full-grid parity is asserted in-benchmark**: the
two runs must select the identical policy in every epoch of every server and
produce bit-identical total energy; any divergence aborts the benchmark.

The headline numbers use the paper's evaluation frequency grid (Section
4.1: minimum ``rho + 0.01`` with step 0.01); the coarser 0.05 runtime grid
is reported alongside, since the frontier's advantage grows with grid
resolution while the full search scales linearly in it.

Run directly (sizes shrink for CI smoke)::

    PYTHONPATH=src python benchmarks/bench_policy_search.py \
        --epochs 200 --farm-minutes 60 --output BENCH_pr4.json

Not a pytest module on purpose: the measurements need fixed large sizes and
a JSON artifact, not statistical repetition.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from datetime import date

import numpy as np

from repro.cluster.dispatch import PowerAwareDispatcher
from repro.cluster.farm import ServerFarm, ServerSpec
from repro.core.qos import mean_qos_from_baseline
from repro.core.runtime import RuntimeConfig, SleepScaleRuntime
from repro.core.search import SEARCH_FRONTIER, SEARCH_FULL, CharacterizationCache
from repro.core.strategies import sleepscale_strategy
from repro.power.platform import atom_power_model, xeon_power_model
from repro.prediction.lms_cusum import LmsCusumPredictor
from repro.scenarios.builders import LmsCusumPredictorFactory
from repro.units import minutes
from repro.workloads.generator import generate_trace_driven_jobs
from repro.workloads.spec import google_workload
from repro.workloads.traces import UtilizationTrace

EPOCH_MINUTES = 5.0
RHO_B = 0.8
CHARACTERIZATION_JOBS = 600
NUM_XEON = 8
NUM_ATOM = 8
ATOM_CEILING = 0.7


def _epoch_signature(result):
    """Per-epoch selection trace used for the parity assertion."""
    return [
        (epoch.policy_label, epoch.sleep_state, epoch.selected_frequency)
        for epoch in result.epochs
    ]


def _assert_parity(name, full_results, frontier_results, full_energy, frontier_energy):
    # repro: ignore[REP004] -- in-benchmark oracle-parity gate: the frontier
    # search selects the identical policy to the full grid, so energies must
    # be bit-identical by contract; an approximate check would mask drift.
    if full_energy != frontier_energy:
        raise SystemExit(
            f"FATAL: {name}: frontier run diverged from the full grid "
            f"(energy {frontier_energy!r} != {full_energy!r})"
        )
    for index, (full_one, fast_one) in enumerate(
        zip(full_results, frontier_results)
    ):
        if _epoch_signature(full_one) != _epoch_signature(fast_one):
            raise SystemExit(
                f"FATAL: {name}: server {index} selected different policies "
                "under frontier search (the search-engine contract is broken)"
            )


def bench_diurnal(epochs: int, frequency_step: float, seed: int) -> dict:
    """One SleepScale server over a compressed day/night cycle."""
    spec = google_workload()
    num_samples = int(epochs * EPOCH_MINUTES)
    phase = 2.0 * math.pi * np.arange(num_samples) / num_samples
    values = 0.04 + (0.42 - 0.04) * 0.5 * (1.0 - np.cos(phase))
    trace = UtilizationTrace(values, interval=minutes(1), name="bench-diurnal")
    jobs = generate_trace_driven_jobs(spec, trace, seed=seed).jobs

    def run(search):
        strategy = sleepscale_strategy(
            xeon_power_model(),
            mean_qos_from_baseline(RHO_B),
            frequency_step=frequency_step,
            characterization_jobs=CHARACTERIZATION_JOBS,
            seed=seed,
            search=search,
            cache=CharacterizationCache() if search == SEARCH_FRONTIER else None,
        )
        runtime = SleepScaleRuntime(
            xeon_power_model(),
            spec,
            strategy,
            LmsCusumPredictor(history=10),
            RuntimeConfig(
                epoch_minutes=EPOCH_MINUTES, rho_b=RHO_B, over_provisioning=0.35
            ),
        )
        return runtime.run(jobs), strategy

    full_result, full_strategy = run(SEARCH_FULL)
    frontier_result, frontier_strategy = run(SEARCH_FRONTIER)
    _assert_parity(
        "diurnal",
        [full_result],
        [frontier_result],
        full_result.total_energy,
        frontier_result.total_energy,
    )
    speedup = full_strategy.search_seconds / frontier_strategy.search_seconds
    stats = frontier_strategy.search_stats
    row = {
        "epochs": len(full_result.epochs),
        "jobs": len(jobs),
        "frequency_step": frequency_step,
        "full_search_s": round(full_strategy.search_seconds, 3),
        "frontier_search_s": round(frontier_strategy.search_seconds, 3),
        "speedup": round(speedup, 2),
        "parity": True,
        "frontier_stats": stats.as_dict() if stats else None,
    }
    print(
        f"{'diurnal':24s} step={frequency_step:<5} "
        f"full {full_strategy.search_seconds:7.2f} s   "
        f"frontier {frontier_strategy.search_seconds:7.2f} s   "
        f"speedup {speedup:5.2f}x   parity=True"
    )
    return row


def bench_heterogeneous_farm(
    duration_minutes: int, frequency_step: float, seed: int
) -> dict:
    """16 mixed Xeon/Atom servers behind the power-aware dispatcher."""
    spec = google_workload()
    values = np.full(duration_minutes, 0.9)
    trace = UtilizationTrace(values, interval=minutes(1), name="bench-farm")
    jobs = generate_trace_driven_jobs(spec, trace, seed=seed + 1).jobs

    def run(search):
        qos = mean_qos_from_baseline(RHO_B)
        strategies = []

        def server(name, power_model, server_seed, max_frequency=1.0):
            def factory(power_model=power_model, server_seed=server_seed):
                strategy = sleepscale_strategy(
                    power_model,
                    qos,
                    frequency_step=frequency_step,
                    characterization_jobs=CHARACTERIZATION_JOBS,
                    seed=server_seed,
                    search=search,
                )
                strategies.append(strategy)
                return strategy

            return ServerSpec(
                name=name,
                power_model=power_model,
                # repro: ignore[REP002] -- serial-only benchmark
                # instrumentation: the local factory appends every built
                # strategy to a closure list for the cache-stats report and
                # never crosses a process boundary.
                strategy_factory=factory,
                predictor_factory=LmsCusumPredictorFactory(history=10),
                config=RuntimeConfig(
                    epoch_minutes=EPOCH_MINUTES,
                    rho_b=RHO_B,
                    over_provisioning=0.35,
                ),
                max_frequency=max_frequency,
            )

        xeon, atom = xeon_power_model(), atom_power_model()
        servers = tuple(
            [server(f"xeon-{i}", xeon, seed + i) for i in range(NUM_XEON)]
            + [
                server(f"atom-{i}", atom, seed + NUM_XEON + i, ATOM_CEILING)
                for i in range(NUM_ATOM)
            ]
        )
        farm = ServerFarm(
            servers=servers,
            spec=spec,
            dispatcher=PowerAwareDispatcher.from_power_models(
                [s.power_model for s in servers]
            ),
            search_cache=(
                CharacterizationCache() if search == SEARCH_FRONTIER else None
            ),
        )
        result = farm.run(jobs)
        return result, strategies

    full_result, full_strategies = run(SEARCH_FULL)
    frontier_result, frontier_strategies = run(SEARCH_FRONTIER)
    _assert_parity(
        "heterogeneous-farm",
        [r for r in full_result.per_server if r is not None],
        [r for r in frontier_result.per_server if r is not None],
        full_result.total_energy,
        frontier_result.total_energy,
    )
    full_seconds = sum(s.search_seconds for s in full_strategies)
    frontier_seconds = sum(s.search_seconds for s in frontier_strategies)
    speedup = full_seconds / frontier_seconds
    stats: dict[str, int] = {}
    for strategy in frontier_strategies:
        if strategy.search_stats is not None:
            for key, value in strategy.search_stats.as_dict().items():
                stats[key] = stats.get(key, 0) + value
    row = {
        "servers": NUM_XEON + NUM_ATOM,
        "duration_minutes": duration_minutes,
        "jobs": len(jobs),
        "frequency_step": frequency_step,
        "full_search_s": round(full_seconds, 3),
        "frontier_search_s": round(frontier_seconds, 3),
        "speedup": round(speedup, 2),
        "parity": True,
        "frontier_stats": stats,
    }
    print(
        f"{'heterogeneous farm (16)':24s} step={frequency_step:<5} "
        f"full {full_seconds:7.2f} s   frontier {frontier_seconds:7.2f} s   "
        f"speedup {speedup:5.2f}x   parity=True"
    )
    return row


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--epochs", type=int, default=200)
    parser.add_argument("--farm-minutes", type=int, default=60)
    parser.add_argument(
        "--frequency-step",
        type=float,
        default=0.01,
        help="headline candidate grid step (the paper's evaluation grid is 0.01)",
    )
    parser.add_argument(
        "--coarse-step",
        type=float,
        default=0.05,
        help="secondary (runtime-search) grid step reported alongside",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", type=str, default=None, metavar="FILE")
    arguments = parser.parse_args(argv)

    diurnal_fine = bench_diurnal(
        arguments.epochs, arguments.frequency_step, arguments.seed
    )
    diurnal_coarse = bench_diurnal(
        arguments.epochs, arguments.coarse_step, arguments.seed
    )
    farm_fine = bench_heterogeneous_farm(
        arguments.farm_minutes, arguments.frequency_step, arguments.seed
    )
    farm_coarse = bench_heterogeneous_farm(
        arguments.farm_minutes, arguments.coarse_step, arguments.seed
    )

    report = {
        "pr": 4,
        "title": (
            "Epoch-scale policy-search engine: cached + frontier "
            "characterization with full-grid parity"
        ),
        # repro: ignore[REP001] -- report metadata stamp, not simulation input.
        "date": date.today().isoformat(),
        "benchmark_file": "benchmarks/bench_policy_search.py",
        "workload": (
            "Google-like jobs (mean 4.2 ms); diurnal day/night cycle on one "
            "Xeon SleepScale server, and constant 0.9 aggregate load on 16 "
            "mixed Xeon/Atom servers behind a power-aware dispatcher"
        ),
        "diurnal": {"fine_grid": diurnal_fine, "coarse_grid": diurnal_coarse},
        "heterogeneous_farm": {"fine_grid": farm_fine, "coarse_grid": farm_coarse},
        "acceptance": {
            "target_speedup": 5.0,
            "measured_diurnal_speedup": diurnal_fine["speedup"],
            "measured_farm_speedup": farm_fine["speedup"],
            "grid": f"paper evaluation grid (step {arguments.frequency_step})",
            "full_grid_parity_asserted": True,
            "equivalence_suite": "tests/core/test_search.py",
        },
    }
    if arguments.output:
        with open(arguments.output, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"wrote {arguments.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
