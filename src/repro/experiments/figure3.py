"""Figure 3 — delaying the entry into a deep sleep state.

The paper studies two-state policies ``C0(i)S0(i) -> C6S3`` for the
Google-like workload at low utilisation: the server drops into the shallow
state immediately (``tau_1 = 0``) and only falls through to C6S3 after the
queue has been idle ``tau_2`` seconds.  The delay parameter interpolates
between the two pure curves — ``tau_2 = 0`` is immediate C6S3 and
``tau_2 = inf`` is pure C0(i)S0(i) — and an intermediate delay saves power at
mild response-time budgets.
"""

from __future__ import annotations

from repro.campaigns.spec import CampaignSpec
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.power.platform import xeon_power_model
from repro.power.states import C0I_S0I, C6_S3
from repro.simulation.sweep import sweep_states
from repro.workloads.spec import workload_by_name


def run(
    config: ExperimentConfig | None = None,
    workload: str = "google",
    utilization: float = 0.1,
    delay_multipliers: tuple[float, ...] = (30.0, 50.0),
) -> ExperimentResult:
    """Sweep the pure policies and the delayed-C6S3 policies of Figure 3.

    ``delay_multipliers`` are the ``tau_2`` values in units of the mean job
    size (the paper uses ``30/mu`` and ``50/mu``).
    """
    config = config or ExperimentConfig()
    power_model = xeon_power_model()
    spec = workload_by_name(workload, empirical=False)
    mean_service = spec.mean_service_time

    def delayed_factory(delay_seconds: float):
        return lambda frequency: power_model.sleep_sequence(
            [C0I_S0I, C6_S3], [0.0, delay_seconds], frequency
        )

    sleeps: dict[str, object] = {
        "C0(i)S0(i)": C0I_S0I,
        "C6S3": C6_S3,
    }
    for multiplier in delay_multipliers:
        label = f"C0(i)S0(i)->C6S3 tau2={multiplier:g}/mu"
        sleeps[label] = delayed_factory(multiplier * mean_service)

    curves = sweep_states(
        spec,
        sleeps,
        power_model,
        utilization=utilization,
        num_jobs=config.sweep_num_jobs,
        seed=config.seed,
        frequency_step=config.sweep_frequency_step,
    )

    rows: list[dict[str, object]] = []
    minima: dict[str, float] = {}
    for label, curve in curves.items():
        minima[label] = curve.minimum_power_point().average_power
        for point in curve:
            rows.append(
                {
                    "workload": workload,
                    "policy": label,
                    "frequency": point.frequency,
                    "normalized_mean_response_time": point.normalized_mean_response_time,
                    "average_power_w": point.average_power,
                }
            )

    notes = (
        "At any fixed frequency the delayed policies' power should lie "
        "between the immediate-C6S3 and pure-C0(i)S0(i) curves.",
        "Larger tau2 values move the delayed curve toward the C0(i)S0(i) curve.",
    )
    return ExperimentResult(
        name="figure3",
        description=(
            "Delayed entry into C6S3 for the Google-like workload "
            f"(rho={utilization})"
        ),
        rows=tuple(rows),
        metadata={
            "utilization": utilization,
            "delay_multipliers": delay_multipliers,
            "minimum_power_per_policy": minima,
        },
        notes=notes,
    )


def power_at_frequency(
    result: ExperimentResult, policy: str, frequency: float, tolerance: float = 0.026
) -> float:
    """Average power of *policy* at the swept frequency closest to *frequency*."""
    rows = result.filtered(policy=policy)
    best = min(rows, key=lambda row: abs(row["frequency"] - frequency))
    if abs(best["frequency"] - frequency) > tolerance:
        raise KeyError(
            f"no swept frequency within {tolerance} of {frequency} for {policy!r}"
        )
    return float(best["average_power_w"])


#: The delayed-entry curves share the two pure-policy curves, so the figure
#: cannot be split along ``delay_multipliers`` without duplicating rows; the
#: campaign pins the single-workload run as one cell.
CAMPAIGN = CampaignSpec(
    name="figure3",
    kind="experiment",
    target="figure3",
    description="Figure 3 delayed deep-sleep entry (single cell)",
    grid={"workload": ("google",)},
)
